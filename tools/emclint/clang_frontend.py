"""libclang frontend: the precise parser.

Lowers real clang ASTs (via the `clang.cindex` Python bindings) to the
shared model.  Range-for types come from the AST's canonical types, so
`auto`, typedefs and nested member chains resolve exactly; members
carry canonical type spellings; call sites carry the referenced
declaration's name instead of a token guess.

Availability is probed at import *use* time, never at module import:
`available()` returns False (with a reason) when the bindings or a
loadable libclang are missing, and the engine falls back to the token
frontend.  Set EMCLINT_LIBCLANG to point at a specific libclang.so.
"""

from __future__ import annotations

import glob
import json
import os
from typing import List, Optional, Tuple

from .model import (CallSite, ClassInfo, Function, MacroUse, Member,
                    NewDelete, RangeFor, StatPut, TranslationUnit)

_ERR: Optional[str] = None
_READY = False


def _probe() -> Tuple[bool, Optional[str]]:
    global _READY, _ERR
    if _READY or _ERR:
        return _READY, _ERR
    try:
        from clang import cindex  # noqa: F401
    except ImportError as e:
        _ERR = "python clang bindings not importable (%s)" % e
        return False, _ERR
    from clang import cindex
    override = os.environ.get("EMCLINT_LIBCLANG")
    candidates = [override] if override else []
    candidates += sorted(
        glob.glob("/usr/lib/llvm-*/lib/libclang-*.so*")
        + glob.glob("/usr/lib/llvm-*/lib/libclang.so*")
        + glob.glob("/usr/lib/*/libclang-*.so*")
        + glob.glob("/usr/lib/*/libclang.so*"),
        reverse=True)
    last = None
    for cand in candidates + [None]:
        try:
            if cand:
                cindex.Config.set_library_file(cand)
            cindex.Index.create()
            _READY = True
            return True, None
        except Exception as e:  # cindex.LibclangError and friends
            last = str(e)
            # Config is sticky once an Index exists; retrying with a
            # fresh set_library_file is fine before the first success.
            try:
                cindex.Config.loaded = False
            except Exception:
                pass
    _ERR = "libclang not loadable (%s)" % (last or "no candidates")
    return False, _ERR


def available() -> Tuple[bool, Optional[str]]:
    """(usable, reason-if-not)."""
    return _probe()


def load_compdb(path: str) -> dict:
    """file -> argument list from a compile_commands.json (or the
    directory containing one)."""
    if os.path.isdir(path):
        path = os.path.join(path, "compile_commands.json")
    with open(path, encoding="utf-8") as f:
        entries = json.load(f)
    out = {}
    for e in entries:
        args = e.get("arguments")
        if not args and "command" in e:
            import shlex
            args = shlex.split(e["command"])
        src = os.path.normpath(
            os.path.join(e.get("directory", "."), e["file"]))
        out[src] = [a for a in (args or [])[1:]
                    if a not in ("-c", "-o") and not a.endswith(".o")
                    and os.path.normpath(a) != src]
    return out


_DEFAULT_ARGS = ["-std=c++20", "-xc++"]


def parse_file(path: str, compdb: Optional[dict] = None,
               extra_args: Optional[List[str]] = None
               ) -> TranslationUnit:
    from clang import cindex

    args = list(_DEFAULT_ARGS)
    norm = os.path.normpath(os.path.abspath(path))
    if compdb and norm in compdb:
        args = compdb[norm]
    if extra_args:
        args += extra_args

    index = cindex.Index.create()
    tu_ast = index.parse(
        path, args=args,
        options=cindex.TranslationUnit
        .PARSE_DETAILED_PROCESSING_RECORD)
    with open(path, encoding="utf-8", errors="replace") as f:
        tu = TranslationUnit(path=path, lines=f.read().splitlines(),
                             frontend="clang")
    _Lowerer(tu, tu_ast, path).run()
    return tu


class _Lowerer:
    def __init__(self, tu: TranslationUnit, ast, path: str):
        self.tu = tu
        self.ast = ast
        self.path = os.path.abspath(path)

    def in_main_file(self, cursor) -> bool:
        loc = cursor.location
        return bool(loc.file) and \
            os.path.abspath(loc.file.name) == self.path

    def run(self) -> None:
        from clang.cindex import CursorKind as CK
        for c in self.ast.cursor.get_children():
            self.visit(c, [])
        # Macro instantiations live at TU level with detailed
        # preprocessing records; attribute them to enclosing functions
        # by line range.
        macro_uses = []
        for c in self.ast.cursor.get_children():
            if c.kind == CK.MACRO_INSTANTIATION \
                    and self.in_main_file(c) \
                    and c.spelling == "EMC_OBS_POINT":
                macro_uses.append(MacroUse(
                    name=c.spelling, line=c.location.line,
                    arg_text=self._tokens_text(c)))
        for mu in macro_uses:
            for fn in self.tu.functions:
                if fn.line <= mu.line <= (fn.end_line or fn.line):
                    if all(m.line != mu.line for m in fn.macro_uses):
                        fn.macro_uses.append(mu)
                        fn.calls.append(CallSite(
                            callee=mu.name, line=mu.line,
                            arg_text=mu.arg_text))
                    break

    def _tokens_text(self, cursor) -> str:
        toks = [t.spelling for t in cursor.get_tokens()]
        # strip NAME ( ... )
        if len(toks) >= 3 and toks[1] == "(":
            toks = toks[2:-1]
        return " ".join(toks)

    # ---- declaration walk ----------------------------------------------

    def visit(self, cursor, scope: List[str]) -> None:
        from clang.cindex import CursorKind as CK
        k = cursor.kind
        if k == CK.NAMESPACE:
            for c in cursor.get_children():
                self.visit(c, scope + [cursor.spelling])
            return
        if k in (CK.CLASS_DECL, CK.STRUCT_DECL, CK.CLASS_TEMPLATE,
                 CK.UNION_DECL):
            if cursor.is_definition() and self.in_main_file(cursor):
                self.lower_class(cursor, scope)
            return
        if k in (CK.CXX_METHOD, CK.FUNCTION_DECL, CK.CONSTRUCTOR,
                 CK.DESTRUCTOR, CK.FUNCTION_TEMPLATE):
            if cursor.is_definition() and self.in_main_file(cursor):
                self.lower_function(cursor, scope, None)
            return
        if k in (CK.TYPE_ALIAS_DECL, CK.TYPEDEF_DECL) \
                and self.in_main_file(cursor):
            try:
                self.tu.aliases[cursor.spelling] = \
                    cursor.underlying_typedef_type.get_canonical() \
                    .spelling
            except Exception:
                pass
            return
        if k == CK.LINKAGE_SPEC or k == CK.UNEXPOSED_DECL:
            for c in cursor.get_children():
                self.visit(c, scope)

    def lower_class(self, cursor, scope: List[str]) -> None:
        from clang.cindex import CursorKind as CK, TypeKind as TK
        name = cursor.spelling or "<anon>"
        qname = "::".join(scope + [name])
        ci = ClassInfo(name=name, qname=qname, file=self.tu.path,
                       line=cursor.location.line)
        self.tu.classes.append(ci)
        for c in cursor.get_children():
            if c.kind == CK.FIELD_DECL:
                t = c.type
                canon = t.get_canonical()
                ci.members.append(Member(
                    name=c.spelling,
                    type_text=t.spelling,
                    line=c.location.line,
                    is_static=False,
                    is_const=canon.is_const_qualified(),
                    is_pointer=canon.kind in (
                        TK.POINTER, TK.MEMBERPOINTER),
                    is_reference=canon.kind in (
                        TK.LVALUEREFERENCE, TK.RVALUEREFERENCE),
                    is_function_like="function<" in
                    canon.spelling.replace(" ", "")))
            elif c.kind == CK.VAR_DECL:
                ci.members.append(Member(
                    name=c.spelling, type_text=c.type.spelling,
                    line=c.location.line, is_static=True))
            elif c.kind in (CK.CXX_METHOD, CK.CONSTRUCTOR,
                            CK.DESTRUCTOR, CK.FUNCTION_TEMPLATE):
                ci.method_names.add(c.spelling)
                if c.is_definition():
                    self.lower_function(c, scope, ci)
            elif c.kind in (CK.CLASS_DECL, CK.STRUCT_DECL,
                            CK.CLASS_TEMPLATE, CK.UNION_DECL):
                if c.is_definition():
                    self.lower_class(c, scope + [name])

    def lower_function(self, cursor, scope: List[str],
                       cls: Optional[ClassInfo]) -> None:
        sem = cursor.semantic_parent
        cls_q = cls.qname if cls else None
        if cls_q is None and sem is not None and sem.kind.name in (
                "CLASS_DECL", "STRUCT_DECL", "CLASS_TEMPLATE"):
            parts = []
            p = sem
            while p is not None and p.spelling and \
                    p.kind.name != "TRANSLATION_UNIT":
                parts.insert(0, p.spelling)
                p = p.semantic_parent
            cls_q = "::".join(parts)
        qname = (cls_q + "::" + cursor.spelling) if cls_q \
            else "::".join(scope + [cursor.spelling])
        fn = Function(
            name=cursor.spelling, qname=qname, cls=cls_q,
            file=self.tu.path, line=cursor.extent.start.line,
            end_line=cursor.extent.end.line)
        self.tu.functions.append(fn)
        self.walk_body(cursor, fn)

    def walk_body(self, cursor, fn: Function) -> None:
        from clang.cindex import CursorKind as CK
        for c in cursor.walk_preorder():
            k = c.kind
            if k == CK.CALL_EXPR and c.spelling:
                recv = None
                kids = list(c.get_children())
                if kids and kids[0].kind == CK.MEMBER_REF_EXPR:
                    base = list(kids[0].get_children())
                    if base:
                        recv = base[0].spelling or None
                elif kids:
                    first = kids[0]
                    if first.kind == CK.MEMBER_REF_EXPR:
                        recv = first.spelling
                arg_text = ""
                if c.spelling in ("put", "ckptSave", "ckptLoad",
                                  "fopen", "fread", "fwrite"):
                    arg_text = " ".join(
                        t.spelling for t in c.get_tokens())
                fn.calls.append(CallSite(
                    callee=c.spelling, line=c.location.line,
                    recv=recv, arg_text=arg_text))
                if c.spelling == "put":
                    self.lower_stat_put(c, fn)
            elif k == CK.CXX_FOR_RANGE_STMT:
                kids = list(c.get_children())
                rng = kids[-2] if len(kids) >= 2 else None
                if rng is not None:
                    fn.range_fors.append(RangeFor(
                        line=c.location.line,
                        range_text=" ".join(
                            t.spelling for t in rng.get_tokens()),
                        resolved_type=rng.type.get_canonical()
                        .spelling))
            elif k in (CK.DECL_REF_EXPR, CK.MEMBER_REF_EXPR):
                if c.spelling:
                    fn.mention(c.spelling, c.location.line)
            elif k == CK.VAR_DECL and c.spelling:
                fn.local_types[c.spelling] = \
                    c.type.get_canonical().spelling
                fn.mention(c.spelling, c.location.line)
            elif k == CK.CXX_NEW_EXPR:
                t = c.type.get_pointee()
                fn.news.append(NewDelete(
                    line=c.location.line, kind="new",
                    type_or_expr=t.spelling.split("::")[-1]))
            elif k == CK.CXX_DELETE_EXPR:
                kids = list(c.get_children())
                expr = kids[0].spelling if kids else ""
                fn.news.append(NewDelete(
                    line=c.location.line, kind="delete",
                    type_or_expr=expr or ""))
            elif k == CK.TYPE_REF and c.spelling:
                fn.mention(c.spelling.split("::")[-1],
                           c.location.line)

    def lower_stat_put(self, cursor, fn: Function) -> None:
        from clang.cindex import CursorKind as CK
        key = None
        prefix = ""
        args = list(cursor.get_arguments())
        if args:
            a0 = args[0]
            lits = [c for c in a0.walk_preorder()
                    if c.kind == CK.STRING_LITERAL]
            if lits:
                text = lits[0].spelling.strip('"')
                if a0.kind == CK.STRING_LITERAL or \
                        a0.kind == CK.UNEXPOSED_EXPR and len(lits) == 1 \
                        and "+" not in " ".join(
                            t.spelling for t in a0.get_tokens()):
                    key = text
                else:
                    prefix = text
        fn.stat_puts.append(StatPut(
            line=cursor.location.line, key=key, key_prefix=prefix))


def parse_many(paths: List[str], compdb: Optional[dict] = None
               ) -> List[TranslationUnit]:
    return [parse_file(p, compdb) for p in sorted(paths)]
