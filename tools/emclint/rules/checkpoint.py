"""Checkpoint rules: ckpt-field and ckpt-coverage.

ckpt-field (ported): serialization code must not bake host addresses
into an image — no reinterpret_cast / [u]intptr_t inside ser()-family
bodies or ckptSave/ckptLoad call arguments.  A pointer value written
into a checkpoint is meaningless in the restoring process (DESIGN.md
§7): serialize stable ids and rebuild pointers on load.

ckpt-coverage (new, impossible as a regex): for every class with a
`ser(A&)` member, diff the declared non-static data members against
the fields the ser() body actually visits.  A member that is neither
visited nor annotated is exactly the bug class that silently breaks
bit-identical restore: the field rides through save/restore with the
*restoring* process's default value, and nothing fails until a resumed
run diverges from an uninterrupted one.

Exempt by construction (documented in DESIGN.md §10):
  * static / constexpr members (not per-instance state),
  * const members (immutable configuration),
  * pointers / references (ckpt::Ar static-asserts on them; they are
    reattached on load, e.g. tracer/streamer wiring),
  * std::function members (wiring, not state).

Everything else must be visited in ser() or carry an explicit
`// ckpt-skip: (reason)` on its declaration (or the line above).
"""

from __future__ import annotations

from typing import List, Optional

from ..model import ClassInfo, Finding, Function, Program, TranslationUnit
from . import Rule, register

_SER_FNS = {"ser", "ckptSer", "ckptSave", "ckptLoad"}
_BANNED_IDS = ("reinterpret_cast", "uintptr_t", "intptr_t")


@register
class CkptFieldRule(Rule):
    name = "ckpt-field"
    description = ("No reinterpret_cast / [u]intptr_t in serialization "
                   "code: a host address written into a checkpoint "
                   "does not survive restore.")

    def check_tu(self, tu: TranslationUnit,
                 program: Program) -> List[Finding]:
        out: List[Finding] = []
        msg = ("'%s' in serialization code; a host address written "
               "into a checkpoint does not survive restore — "
               "serialize a stable id and rebuild the pointer on load")
        for fn in tu.functions:
            if fn.name in _SER_FNS:
                for banned in _BANNED_IDS:
                    if banned in fn.mentions:
                        out.append(Finding(
                            tu.path,
                            fn.mention_lines.get(banned, fn.line),
                            self.name, msg % banned))
            for call in fn.calls:
                if call.callee in ("ckptSave", "ckptLoad"):
                    for banned in _BANNED_IDS:
                        if banned in call.arg_text:
                            out.append(Finding(
                                tu.path, call.line, self.name,
                                msg % banned))
        return out


@register
class CkptCoverageRule(Rule):
    name = "ckpt-coverage"
    description = ("Every serializable data member of a ser()-bearing "
                   "class must be visited by ser() or annotated "
                   "'// ckpt-skip: (reason)'; an unserialized member "
                   "silently breaks bit-identical restore.")

    def check_program(self, program: Program) -> List[Finding]:
        out: List[Finding] = []
        tus_by_path = {tu.path: tu for tu in program.tus}
        for ci in sorted(program.classes.values(),
                         key=lambda c: (c.file, c.line)):
            if not ci.has_ser():
                continue
            body = self._ser_body(ci, program)
            if body is None:
                continue  # declaration without a parsed body
            tu = tus_by_path.get(ci.file)
            for m in ci.members:
                if not m.serializable():
                    continue
                if self._exempt_through_alias(m, program):
                    continue
                if m.name in body.mentions:
                    continue
                if tu is not None and m.line in tu.ckpt_skips:
                    continue
                out.append(Finding(
                    ci.file, m.line, self.name,
                    "member '%s' of %s is not serialized in ser(); "
                    "checkpoint restore will silently lose it — "
                    "add ar.io(%s) or annotate "
                    "'// ckpt-skip: (reason)'"
                    % (m.name, ci.qname, m.name)))
        return out

    @staticmethod
    def _exempt_through_alias(m, program: Program) -> bool:
        """Member.serializable() sees only the spelled type; a member
        declared through an alias (`using Callback = std::function<..>;
        Callback cb_;`) is still wiring, not state."""
        flat = program.resolve_alias(m.type_text).replace(" ", "")
        return ("function<" in flat or "(*" in flat
                or flat.endswith("*") or flat.endswith("&"))

    @staticmethod
    def _ser_body(ci: ClassInfo,
                  program: Program) -> Optional[Function]:
        defs = program.methods_of(ci.qname, "ser")
        if defs:
            # Merge multiple definitions (save/load split, if any).
            merged = defs[0]
            for extra in defs[1:]:
                merged.mentions |= extra.mentions
            return merged
        return None
