"""Warming rules: fastwarm-timing (direct) and warm-contract
(call-graph, new).

The fast-warm equivalence contract (DESIGN.md §8) promises that
fast-forwarded and detailed-warmed runs produce identical measured
stats.  That holds only if functional-warming code is tag-only: no
event scheduling, no stat mutation, no traffic accounting, no
observability hooks.

fastwarm-timing is the AST port of the regex rule: it inspects the
bodies of warm entry points (`warm[A-Z]*` / `fastForward*` functions
and everything defined in fastwarm.* files) for direct violations.

warm-contract is what the regex could never do: it walks the call
graph from every warm entry point and flags *transitively* reachable
timing/stat sinks, reporting the offending call chain.  Callees are
resolved conservatively — same-class methods first, otherwise only
uniquely-named free functions/methods — so an unrelated overload in
another class cannot produce a false chain.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Set, Tuple

from ..model import Finding, Function, Program
from . import Rule, register

_ENTRY_RE = re.compile(r"^(?:warm[A-Z]\w*|fastForward\w*)$")
_BANNED_MENTIONS = ("events_", "traffic_", "tracer_", "streamer_",
                    "stats_")
_MAX_DEPTH = 12


def is_warm_named(fn: Function) -> bool:
    """Functions whose *name* marks them as functional-warming code
    (`warm*` / `fastForward*`).  These are the call-graph entry points:
    the whole tree under them must be tag-only."""
    return bool(_ENTRY_RE.match(fn.name))


def in_fastwarm_file(fn: Function) -> bool:
    base = fn.file.replace("\\", "/").rsplit("/", 1)[-1]
    return base.startswith("fastwarm")


def is_warm_entry(fn: Function) -> bool:
    """Scope of the *direct* (depth-0) scan, matching the regex rule:
    warm-named functions plus everything defined in fastwarm.* files.
    fastwarm.cc also hosts the sampling driver (runSampled) and
    checkpoint sizing, which legitimately re-enter detailed simulation
    through tickOnce()/ckptPayload() — so the transitive walk must NOT
    treat file residency as an entry mark, only the naming contract."""
    return is_warm_named(fn) or in_fastwarm_file(fn)


def direct_violations(fn: Function) -> List[Tuple[int, str]]:
    """(line, what) pairs for timing/stat sinks used directly in fn."""
    out: List[Tuple[int, str]] = []
    for call in fn.calls:
        if call.callee == "schedule":
            out.append((call.line, "schedule()"))
        elif call.callee == "sample" and call.recv is not None:
            out.append((call.line, "%s.sample()" % call.recv))
    for banned in _BANNED_MENTIONS:
        if banned in fn.mentions:
            out.append((fn.mention_lines.get(banned, fn.line), banned))
    for mu in fn.macro_uses:
        out.append((mu.line, "EMC_OBS_POINT"))
    return sorted(set(out))


@register
class FastwarmTimingRule(Rule):
    name = "fastwarm-timing"
    description = ("Functional-warming code must stay tag-only: no "
                   "event scheduling, stat mutation, traffic "
                   "accounting, or observability hooks (DESIGN.md §8).")

    def check_tu(self, tu, program: Program) -> List[Finding]:
        out: List[Finding] = []
        for fn in tu.functions:
            if not is_warm_entry(fn):
                continue
            for line, what in direct_violations(fn):
                out.append(Finding(
                    tu.path, line, self.name,
                    "'%s' on the functional-warming path '%s'; "
                    "warming must be tag-only (no events, stats, "
                    "traffic, or trace hooks — DESIGN.md §8)"
                    % (what, fn.qname)))
        return out


@register
class WarmContractRule(Rule):
    name = "warm-contract"
    description = ("Call-graph check: no function transitively "
                   "reachable from a warm*/fastForward* entry point "
                   "may schedule events, mutate stats, or emit "
                   "observability hooks; violations report the call "
                   "chain.")

    def check_program(self, program: Program) -> List[Finding]:
        out: List[Finding] = []
        entries = [fn for fn in program.functions if is_warm_named(fn)]
        for entry in entries:
            out.extend(self._walk(entry, program))
        # One finding per (sink location, entry) pair is enough.
        return sorted(set(out), key=lambda f: f.sort_key())

    def _walk(self, entry: Function,
              program: Program) -> List[Finding]:
        out: List[Finding] = []
        seen: Set[int] = {id(entry)}
        stack: List[Tuple[Function, Tuple[str, ...]]] = \
            [(entry, (entry.name,))]
        while stack:
            fn, chain = stack.pop()
            if len(chain) > 1:
                # Depth ≥ 1: direct sinks in `fn` are violations
                # *reached from* the warm entry (depth-0 sinks are
                # fastwarm-timing's).
                for line, what in direct_violations(fn):
                    out.append(Finding(
                        fn.file, line, self.name,
                        "'%s' reachable from warm entry '%s' via %s; "
                        "the warming contract (DESIGN.md §8) forbids "
                        "timing/stat effects anywhere on the warm "
                        "path" % (what, entry.qname,
                                  " -> ".join(chain))))
            if len(chain) >= _MAX_DEPTH:
                continue
            for call in fn.calls:
                for target in self._resolve(call.callee, fn, program):
                    if id(target) in seen or is_warm_named(target):
                        continue
                    seen.add(id(target))
                    stack.append((target, chain + (target.name,)))
        return out

    @staticmethod
    def _resolve(callee: str, caller: Function,
                 program: Program) -> List[Function]:
        if callee in ("schedule", "sample"):
            return []  # already treated as sinks
        same_class = program.methods_of(caller.cls, callee)
        if same_class:
            return same_class
        defs = program.functions_by_name.get(callee, [])
        if len(defs) == 1:
            return defs
        return []
