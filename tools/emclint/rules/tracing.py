"""trace-hook: observation hooks must be observation-only.

Two obligations (DESIGN.md §6):

  1. Simulator code never calls Tracer::record directly — every hook
     goes through EMC_OBS_POINT, which is a null test when no tracer
     is attached and compiles out under -DEMC_SIM_TRACE=OFF.
  2. EMC_OBS_POINT argument expressions must be side-effect free: a
     hook-stripped build does not evaluate them, so `++x`, an
     assignment, or a *mutating call* in an argument silently changes
     simulation behaviour between build flavours.

The regex ancestor only caught ++/--/assignment; the model-based rule
also flags calls whose names are mutating by the codebase's own naming
conventions (push/pop/insert/erase/set*/advance/alloc/record/...).
"""

from __future__ import annotations

import re
from typing import List

from ..model import Finding, Program, TranslationUnit
from . import Rule, register

_TRACE_EXEMPT = ("src/obs/",)

_SIDE_EFFECT_RE = re.compile(
    r"\+\+|--|(?<![=!<>+\-*/%|&^])=(?![=])")

#: Call names that mutate state by this codebase's naming conventions.
_MUTATING_CALL_RE = re.compile(
    r"\b(?:push\w*|pop\w*|insert\w*|erase\w*|emplace\w*|clear|"
    r"reset\w*|set[A-Z]\w*|add\w*|advance\w*|alloc\w*|take\w*|"
    r"release\w*|remove\w*|commit\w*|invalidate\w*|sample|record|"
    r"schedule|put|complete\w*|retire\w*|drain\w*)\s*\(")


def _strip_strings(text: str) -> str:
    return re.sub(r'"(?:[^"\\]|\\.)*"', '""', text)


@register
class TraceHookRule(Rule):
    name = "trace-hook"
    description = ("Trace hooks go through EMC_OBS_POINT only, and "
                   "hook arguments must be side-effect free (incl. no "
                   "mutating calls): a hook-stripped build does not "
                   "evaluate them.")

    def check_tu(self, tu: TranslationUnit,
                 program: Program) -> List[Finding]:
        rel = tu.path.replace("\\", "/")
        exempt = any(e in rel for e in _TRACE_EXEMPT)
        out: List[Finding] = []
        for fn in tu.functions:
            if not exempt:
                for call in fn.calls:
                    if call.callee == "record" and call.recv:
                        out.append(Finding(
                            tu.path, call.line, self.name,
                            "direct Tracer::record(); hooks go through "
                            "EMC_OBS_POINT (src/obs/obs.hh)"))
            for mu in fn.macro_uses:
                args = _strip_strings(mu.arg_text)
                if _SIDE_EFFECT_RE.search(args):
                    out.append(Finding(
                        tu.path, mu.line, self.name,
                        "side effect in EMC_OBS_POINT arguments; a "
                        "hook-stripped build does not evaluate them"))
                else:
                    m = _MUTATING_CALL_RE.search(args)
                    if m:
                        out.append(Finding(
                            tu.path, mu.line, self.name,
                            "mutating call '%s(...)' in EMC_OBS_POINT "
                            "arguments; a hook-stripped build does not "
                            "evaluate them"
                            % m.group(0).rstrip(" (")))
        return out


#: The only code allowed to touch trace-container bytes directly.
_RAW_IO_EXEMPT = ("src/trace/", "src/isa/trace_io")


@register
class TraceRawIoRule(Rule):
    name = "trace-raw-io"
    description = ("Trace-container bytes are parsed only by "
                   "src/trace/ (and the legacy v1 reader in "
                   "src/isa/trace_io): everything else goes through "
                   "trace::openTraceFile / probeFile, so version "
                   "checks, checksums and typed errors cannot be "
                   "bypassed.")

    def check_tu(self, tu: TranslationUnit,
                 program: Program) -> List[Finding]:
        rel = tu.path.replace("\\", "/")
        if any(e in rel for e in _RAW_IO_EXEMPT):
            return []
        out: List[Finding] = []
        for fn in tu.functions:
            for call in fn.calls:
                if call.callee == "fopen" \
                        and ".emct" in call.arg_text:
                    out.append(Finding(
                        tu.path, call.line, self.name,
                        "fopen() of a trace container; open traces "
                        "via trace::openTraceFile / probeFile "
                        "(src/trace/reader.hh)"))
                elif call.callee in ("fread", "fwrite") \
                        and "DynUop" in call.arg_text:
                    out.append(Finding(
                        tu.path, call.line, self.name,
                        "raw %s() of trace records; DynUop streams "
                        "are (de)serialized only by src/trace/"
                        % call.callee))
        # Hand-rolled container parsing announces itself by testing
        # the magic string.
        for lineno, text in enumerate(tu.lines, start=1):
            if '"EMCT"' in text:
                out.append(Finding(
                    tu.path, lineno, self.name,
                    'trace magic "EMCT" referenced outside '
                    "src/trace/; use trace::probeFile for version "
                    "dispatch"))
        return out
