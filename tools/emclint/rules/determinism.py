"""Determinism rules: rng, unordered-iter, raw-new, event-push,
process-spawn.

These are the AST ports of the corresponding tools/lint_sim.py regex
rules.  The semantic model removes the classic regex blind spots: a
`system()` *method* on some object no longer trips process-spawn, a
range-for over a *sorted copy* of an unordered container's keys is
clean, and `auto`/typedef'd unordered containers are resolved to their
real type before being flagged.
"""

from __future__ import annotations

import re
from typing import List, Optional

from ..model import (Finding, Function, Program, TranslationUnit,
                     UNORDERED_TYPES)
from . import Rule, register

_RNG_ENGINES = {
    "random_device", "mt19937", "mt19937_64", "default_random_engine",
    "minstd_rand", "minstd_rand0", "knuth_b", "ranlux24", "ranlux48",
}
_RNG_CALLS = {"rand", "srand", "time", "clock"}
_RNG_EXEMPT = ("src/common/rng.hh", "src/common/rng.cc")


@register
class RngRule(Rule):
    name = "rng"
    description = ("All randomness and wall-clock access must flow "
                   "through the seeded Rng (src/common/rng.hh) so runs "
                   "are reproducible.")

    def check_tu(self, tu: TranslationUnit,
                 program: Program) -> List[Finding]:
        rel = tu.path.replace("\\", "/")
        if any(rel.endswith(e) for e in _RNG_EXEMPT):
            return []
        out: List[Finding] = []
        msg = "nondeterministic source; use common/rng.hh (Rng)"
        for fn in tu.functions:
            for call in fn.calls:
                if call.callee in _RNG_CALLS and \
                        call.recv in (None, "std"):
                    out.append(Finding(tu.path, call.line,
                                       self.name, msg))
            for ident in _RNG_ENGINES & fn.mentions:
                out.append(Finding(
                    tu.path, fn.mention_lines.get(ident, fn.line),
                    self.name,
                    "std::%s is nondeterministically seeded; use "
                    "common/rng.hh (Rng)" % ident))
        for ci in tu.classes:
            for m in ci.members:
                if any(e in m.type_text for e in _RNG_ENGINES):
                    out.append(Finding(tu.path, m.line, self.name, msg))
        return out


@register
class UnorderedIterRule(Rule):
    name = "unordered-iter"
    description = ("No range-for iteration over unordered containers: "
                   "hash-order iteration feeding stats or output makes "
                   "runs depend on pointer values / libstdc++ version. "
                   "The range expression's type is resolved through "
                   "auto, typedefs and member lookup.")

    def check_tu(self, tu: TranslationUnit,
                 program: Program) -> List[Finding]:
        out: List[Finding] = []
        for fn in tu.functions:
            for rf in fn.range_fors:
                rtype = rf.resolved_type or \
                    self._resolve(rf.range_text, fn, program)
                if rtype is None:
                    continue
                rtype = program.resolve_alias(rtype)
                if UNORDERED_TYPES.search(rtype):
                    out.append(Finding(
                        tu.path, rf.line, self.name,
                        "range-for over '%s' (type %s); hash order is "
                        "not deterministic — iterate a sorted copy or "
                        "an ordered container"
                        % (rf.range_text.strip(),
                           _shorten(rtype))))
        return out

    def _resolve(self, range_text: str, fn: Function,
                 program: Program, depth: int = 3
                 ) -> Optional[str]:
        """Best-effort type of a range expression by final-identifier
        lookup (token frontend only; clang resolves exactly)."""
        if depth <= 0:
            return None
        expr = range_text.strip()
        if expr.endswith(")"):
            return None  # call result: unknown without overload info
        ids = re.findall(r"[A-Za-z_]\w*", expr)
        if not ids:
            return None
        name = ids[-1]
        local = fn.local_types.get(name)
        if local is not None:
            if local.startswith("auto="):
                return self._resolve(local[5:], fn, program, depth - 1)
            return local
        if fn.cls is not None:
            ci = program.classes.get(fn.cls)
            if ci is not None:
                m = ci.member(name)
                if m is not None:
                    return m.type_text
        # Repo-wide member fallback (mirrors lint_sim's global pass —
        # catches iteration over another object's exposed member).
        return program.member_types.get(name)


def _shorten(t: str, limit: int = 48) -> str:
    return t if len(t) <= limit else t[:limit - 1] + "…"


@register
class RawNewRule(Rule):
    name = "raw-new"
    description = ("No raw new/delete of Transaction objects outside "
                   "the slab pool; raw allocation bypasses the pool's "
                   "leak accounting.")

    def check_tu(self, tu: TranslationUnit,
                 program: Program) -> List[Finding]:
        out: List[Finding] = []
        for fn in tu.functions:
            for nd in fn.news:
                if nd.kind == "new" and nd.type_or_expr == "Transaction":
                    out.append(Finding(
                        tu.path, nd.line, self.name,
                        "raw transaction allocation; use the slab pool"))
                elif nd.kind == "delete" and "txn" in \
                        nd.type_or_expr.lower():
                    out.append(Finding(
                        tu.path, nd.line, self.name,
                        "raw transaction delete; use the slab pool"))
        return out


@register
class EventPushRule(Rule):
    name = "event-push"
    description = ("No direct events_.push() outside System::schedule; "
                   "the schedule API clamps cycles and feeds the "
                   "EventQueueChecker mirror.")

    def check_tu(self, tu: TranslationUnit,
                 program: Program) -> List[Finding]:
        out: List[Finding] = []
        for fn in tu.functions:
            for call in fn.calls:
                if call.callee == "push" and call.recv == "events_":
                    out.append(Finding(
                        tu.path, call.line, self.name,
                        "direct event-queue push; go through "
                        "System::schedule"))
        return out


_SPAWN_CALLS = {
    "fork", "vfork", "system", "popen", "execl", "execlp", "execle",
    "execv", "execvp", "execvpe", "posix_spawn", "posix_spawnp",
}
_SPAWN_EXEMPT = ("src/sweep/",)


@register
class ProcessSpawnRule(Rule):
    name = "process-spawn"
    description = ("No raw fork()/system()/exec*() outside src/sweep/: "
                   "process management lives in the sweep coordinator; "
                   "an ad hoc fork inherits open stat/trace/ckpt "
                   "streams and corrupts them at exit.")

    def check_tu(self, tu: TranslationUnit,
                 program: Program) -> List[Finding]:
        rel = tu.path.replace("\\", "/")
        if any(e in rel for e in _SPAWN_EXEMPT):
            return []
        out: List[Finding] = []
        for fn in tu.functions:
            for call in fn.calls:
                if call.callee in _SPAWN_CALLS and call.recv is None:
                    out.append(Finding(
                        tu.path, call.line, self.name,
                        "raw process spawn ('%s'); process management "
                        "lives in the sweep coordinator (src/sweep/)"
                        % call.callee))
        return out
