"""Rule engine: base class, registry, and the rule catalog.

Each rule is a class with a unique `name` (the id used in findings,
`// lint-ok:` suppressions and `--rules` filters), a `description`
shown by `--list-rules` and embedded in SARIF output, and two hooks:

    check_tu(tu, program)    per-translation-unit findings
    check_program(program)   whole-program (cross-TU) findings

Rules never see raw text — only the semantic model — so they behave
identically under both frontends.  Fixtures for every rule live in
tests/emclint/fixtures and run as ctest `test_emclint`.
"""

from __future__ import annotations

from typing import Dict, List, Type

from ..model import Finding, Program, TranslationUnit


class Rule:
    name: str = ""
    description: str = ""

    def check_tu(self, tu: TranslationUnit,
                 program: Program) -> List[Finding]:
        return []

    def check_program(self, program: Program) -> List[Finding]:
        return []


_REGISTRY: Dict[str, Type[Rule]] = {}


def register(cls: Type[Rule]) -> Type[Rule]:
    assert cls.name and cls.name not in _REGISTRY, cls
    _REGISTRY[cls.name] = cls
    return cls


def all_rules() -> Dict[str, Type[Rule]]:
    # Import the rule modules on first use so `register` has run.
    from . import checkpoint, determinism, statreg, tracing, warming  # noqa: F401
    return dict(_REGISTRY)


def rule_names() -> List[str]:
    return sorted(all_rules().keys())
