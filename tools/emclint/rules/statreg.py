"""Stat registry rules: stat-dup (per file) and stat-registry
(cross-TU, new).

StatDump is a flat name→value map: a key registered twice silently
overwrites the first value.  stat-dup keeps the ported per-file check
for single-file runs; stat-registry supersedes it across translation
units — the case a per-file regex can never see — and additionally
enforces the repo's stat naming schema so downstream tooling
(emcstat, the sweep JSONL pipeline, EXPERIMENTS.md recipes) can rely
on `group.metric_name` keys.
"""

from __future__ import annotations

import re
from typing import Dict, List, Tuple

from ..model import Finding, Program, TranslationUnit
from . import Rule, register

#: `group.metric` keys: lowercase, digits, underscores; dot-separated
#: hierarchy with at least two components.
_SCHEMA_RE = re.compile(r"^[a-z][a-z0-9_]*(\.[a-z0-9_]+)+$")
#: Leading literal of a dynamically-built key must still start a
#: schema-conforming key.
_PREFIX_RE = re.compile(r"^[a-z][a-z0-9_.]*$")


@register
class StatDupRule(Rule):
    name = "stat-dup"
    description = ("The same literal stat key must not be put() twice "
                   "in one file; the second registration silently "
                   "overwrites the first.")

    def check_tu(self, tu: TranslationUnit,
                 program: Program) -> List[Finding]:
        out: List[Finding] = []
        seen: Dict[str, int] = {}
        puts = [(sp.line, sp.key) for fn in tu.functions
                for sp in fn.stat_puts if sp.key is not None]
        for line, key in sorted(puts):
            if key in seen:
                out.append(Finding(
                    tu.path, line, self.name,
                    'stat "%s" already registered at line %d'
                    % (key, seen[key])))
            else:
                seen[key] = line
        return out


@register
class StatRegistryRule(Rule):
    name = "stat-registry"
    description = ("Cross-TU stat-key registry: a literal key may be "
                   "registered from only one translation unit, and "
                   "every key must follow the group.metric naming "
                   "schema ([a-z0-9_], dot-separated).")

    def check_program(self, program: Program) -> List[Finding]:
        out: List[Finding] = []
        first: Dict[str, Tuple[str, int]] = {}
        for tu in sorted(program.tus, key=lambda t: t.path):
            for fn in sorted(tu.functions, key=lambda f: f.line):
                for sp in fn.stat_puts:
                    if sp.key is not None:
                        if not _SCHEMA_RE.match(sp.key):
                            out.append(Finding(
                                tu.path, sp.line, self.name,
                                'stat key "%s" violates the '
                                "group.metric naming schema "
                                "([a-z0-9_] components, dot-separated, "
                                "at least two levels)" % sp.key))
                        prev = first.get(sp.key)
                        if prev is None:
                            first[sp.key] = (tu.path, sp.line)
                        elif prev[0] != tu.path:
                            out.append(Finding(
                                tu.path, sp.line, self.name,
                                'stat "%s" collides with the '
                                "registration at %s:%d — the later "
                                "put() silently overwrites it"
                                % (sp.key, prev[0], prev[1])))
                    elif sp.key_prefix and \
                            not _PREFIX_RE.match(sp.key_prefix):
                        out.append(Finding(
                            tu.path, sp.line, self.name,
                            'dynamic stat key prefix "%s" violates '
                            "the naming schema" % sp.key_prefix))
        return out
