"""Fixture tests for the emclint rule catalog.

Every fixture line that must produce a finding carries a
``[expect: rule]`` marker (space-separated for multiple rules); the
bracketed form coexists with ``// lint-ok:`` / ``// ckpt-skip:``
comments on the same line.  The runner compares the *exact* set of
(file, line, rule) triples both ways: a missed finding and a spurious
finding are equally failures.  A coverage assertion keeps the corpus
honest — every registered rule (plus the "lint-ok" annotation
pseudo-rule) must be exercised by at least one marker.

Run standalone:  python3 -m unittest discover -s tools/emclint/tests
Under ctest:     test_emclint
"""

from __future__ import annotations

import contextlib
import io
import json
import os
import re
import shutil
import sys
import tempfile
import unittest

_TESTS_DIR = os.path.dirname(os.path.abspath(__file__))
_TOOLS_DIR = os.path.dirname(os.path.dirname(_TESTS_DIR))
_REPO_DIR = os.path.dirname(_TOOLS_DIR)
if _TOOLS_DIR not in sys.path:
    sys.path.insert(0, _TOOLS_DIR)

from emclint import cli, engine, token_frontend  # noqa: E402
from emclint.rules import all_rules  # noqa: E402

FIXTURES = os.path.join(_TESTS_DIR, "fixtures")
MARKER_RE = re.compile(r"\[expect:\s*([a-z -]+?)\s*\]")


def expected_markers():
    """All (relpath, line, rule) triples declared in the fixtures."""
    out = set()
    for path in engine.collect_sources([FIXTURES]):
        rel = os.path.relpath(path, FIXTURES).replace(os.sep, "/")
        with open(path, encoding="utf-8") as f:
            for lineno, raw in enumerate(f, start=1):
                m = MARKER_RE.search(raw)
                if m:
                    for rule in m.group(1).split():
                        out.add((rel, lineno, rule))
    return out


def actual_findings():
    res = engine.analyze([FIXTURES], frontend="tokens")
    out = set()
    for f in res.findings:
        rel = os.path.relpath(f.path, FIXTURES).replace(os.sep, "/")
        out.add((rel, f.line, f.rule))
    return out, res


class FixtureCorpusTest(unittest.TestCase):
    """The corpus findings must match the markers exactly."""

    @classmethod
    def setUpClass(cls):
        cls.expected = expected_markers()
        cls.actual, cls.result = actual_findings()

    def test_frontend_is_tokens(self):
        self.assertEqual(self.result.frontend, "tokens")

    def test_no_missing_findings(self):
        missing = sorted(self.expected - self.actual)
        self.assertEqual(
            missing, [],
            "fixture lines marked [expect: ...] produced no finding: "
            "%r" % missing)

    def test_no_unexpected_findings(self):
        unexpected = sorted(self.actual - self.expected)
        self.assertEqual(
            unexpected, [],
            "findings on unmarked fixture lines (false positives): "
            "%r" % unexpected)

    def test_every_rule_is_exercised(self):
        needed = set(all_rules().keys()) | {"lint-ok"}
        covered = {rule for (_, _, rule) in self.expected}
        self.assertEqual(
            sorted(needed - covered), [],
            "rules with no triggering fixture")

    def test_known_good_files_are_clean(self):
        clean_files = {"determinism_good.cc", "warm_good.cc",
                       "ckpt_good.hh", "src/sweep/spawn_ok.cc",
                       "src/obs/trace_ok.cc"}
        dirty = sorted(rel for (rel, _, _) in self.actual
                       if rel in clean_files)
        self.assertEqual(dirty, [])


class CkptCoverageAcceptanceTest(unittest.TestCase):
    """The issue's acceptance criterion: a deliberately unserialized
    member added to a real ser()-bearing class is flagged."""

    ANCHOR = "std::size_t head_ = 0;"
    SNEAKY = "std::uint64_t sneaky_extra_ = 0;"

    def setUp(self):
        self.tmp = tempfile.mkdtemp(prefix="emclint_ckpt_")
        self.addCleanup(shutil.rmtree, self.tmp)
        self.src = os.path.join(_REPO_DIR, "src", "vm", "tlb.hh")

    def _analyze_copy(self, mutate):
        with open(self.src, encoding="utf-8") as f:
            text = f.read()
        if mutate:
            self.assertIn(self.ANCHOR, text)
            text = text.replace(
                self.ANCHOR,
                self.ANCHOR + "\n    " + self.SNEAKY)
        path = os.path.join(self.tmp, "tlb.hh")
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        return engine.analyze([path], frontend="tokens").findings

    def test_pristine_copy_is_clean(self):
        self.assertEqual(self._analyze_copy(mutate=False), [])

    def test_unserialized_member_is_flagged(self):
        findings = self._analyze_copy(mutate=True)
        self.assertEqual(len(findings), 1, findings)
        f = findings[0]
        self.assertEqual(f.rule, "ckpt-coverage")
        self.assertIn("sneaky_extra_", f.message)


class TokenFrontendRegressionTest(unittest.TestCase):
    """Parses that used to go wrong on real src/ files."""

    def _parse(self, text):
        tmp = tempfile.NamedTemporaryFile(
            "w", suffix=".hh", delete=False, encoding="utf-8")
        self.addCleanup(os.unlink, tmp.name)
        tmp.write(text)
        tmp.close()
        return token_frontend.parse_file(tmp.name)

    def test_array_member_name_is_before_the_bracket(self):
        # `bool valid_[kArchRegs]` once extracted `kArchRegs` as the
        # member name, hiding `valid_` from ckpt-coverage.
        tu = self._parse(
            "struct R {\n"
            "    bool valid_[kArchRegs] = {};\n"
            "    Histogram hist_[3][kNumPhases];\n"
            "    int plain_ = 0;\n"
            "};\n")
        names = {m.name for ci in tu.classes for m in ci.members}
        self.assertEqual(names, {"valid_", "hist_", "plain_"})


class CliContractTest(unittest.TestCase):
    """Exit codes and report formats (same contract as lint_sim.py)."""

    def _run(self, argv):
        out, err = io.StringIO(), io.StringIO()
        with contextlib.redirect_stdout(out), \
                contextlib.redirect_stderr(err):
            code = cli.main(argv)
        return code, out.getvalue(), err.getvalue()

    def setUp(self):
        self.tmp = tempfile.mkdtemp(prefix="emclint_cli_")
        self.addCleanup(shutil.rmtree, self.tmp)

    def _clean_file(self):
        path = os.path.join(self.tmp, "clean.cc")
        with open(path, "w", encoding="utf-8") as f:
            f.write("namespace fx { inline int two() "
                    "{ return 2; } }\n")
        return path

    def test_exit_1_on_findings(self):
        code, _, _ = self._run(["--frontend", "tokens",
                                "--no-baseline", "-q", FIXTURES])
        self.assertEqual(code, 1)

    def test_exit_0_on_clean(self):
        code, _, _ = self._run(["--frontend", "tokens",
                                "--no-baseline", "-q",
                                self._clean_file()])
        self.assertEqual(code, 0)

    def test_exit_2_on_missing_path(self):
        code, _, err = self._run(["--frontend", "tokens", "-q",
                                  os.path.join(self.tmp, "nope")])
        self.assertEqual(code, 2)
        self.assertIn("no such path", err)

    def test_json_report_is_valid(self):
        out_path = os.path.join(self.tmp, "report.json")
        code, _, _ = self._run(["--frontend", "tokens",
                                "--no-baseline", "-q",
                                "--format", "json",
                                "-o", out_path, FIXTURES])
        self.assertEqual(code, 1)
        with open(out_path, encoding="utf-8") as f:
            data = json.load(f)
        self.assertGreater(len(data["findings"]), 0)
        for item in data["findings"]:
            self.assertIn("rule", item)
            self.assertIn("file", item)
            self.assertIn("line", item)

    def test_sarif_report_is_valid(self):
        out_path = os.path.join(self.tmp, "report.sarif")
        code, _, _ = self._run(["--frontend", "tokens",
                                "--no-baseline", "-q",
                                "--format", "sarif",
                                "-o", out_path, FIXTURES])
        self.assertEqual(code, 1)
        with open(out_path, encoding="utf-8") as f:
            sarif = json.load(f)
        self.assertEqual(sarif["version"], "2.1.0")
        run = sarif["runs"][0]
        self.assertGreater(len(run["results"]), 0)
        rule_ids = {r["id"] for r in
                    run["tool"]["driver"]["rules"]}
        for result in run["results"]:
            self.assertIn(result["ruleId"], rule_ids)

    def test_baseline_round_trip(self):
        # --write-baseline accepts today's findings; the next run with
        # that baseline is green.
        bl = os.path.join(self.tmp, "baseline.json")
        code, _, _ = self._run(["--frontend", "tokens", "-q",
                                "--baseline", bl,
                                "--write-baseline", FIXTURES])
        self.assertEqual(code, 0)
        code, _, _ = self._run(["--frontend", "tokens", "-q",
                                "--baseline", bl, FIXTURES])
        self.assertEqual(code, 0)

    def test_shipped_baseline_is_empty(self):
        # The acceptance bar for src/ is annotated suppressions, not a
        # bulk waiver file (DESIGN.md §10).
        shipped = os.path.join(_TOOLS_DIR, "emclint", "baseline.json")
        with open(shipped, encoding="utf-8") as f:
            data = json.load(f)
        self.assertEqual(data["version"], 1)
        self.assertEqual(data["fingerprints"], [])


class SrcIsCleanTest(unittest.TestCase):
    """The real tree must be finding-free without any baseline — this
    is the same gate CI applies."""

    def test_src_has_no_findings(self):
        res = engine.analyze([os.path.join(_REPO_DIR, "src")],
                             frontend="tokens")
        self.assertEqual(
            [(f.path, f.line, f.rule) for f in res.findings], [])


if __name__ == "__main__":
    unittest.main()
