// Fixture: trace-hook — EMC_OBS_POINT arguments must be side-effect
// free, and simulator code never calls Tracer::record directly.

namespace fx
{

struct McTracer
{
    void hookWithIncrement(unsigned long addr)
    {
        EMC_OBS_POINT(tr_, mc_read, ++seq_, addr);  // [expect: trace-hook]
    }

    void hookWithMutatingCall(unsigned long addr)
    {
        EMC_OBS_POINT(tr_, mc_read, q_.pop(), addr);  // [expect: trace-hook]
    }

    // Pure reads in hook arguments are the sanctioned form.
    void hookClean(unsigned long addr)
    {
        EMC_OBS_POINT(tr_, mc_read, addr, seq_);
    }

    void directRecord(unsigned long addr)
    {
        tr_->record(addr);  // [expect: trace-hook]
    }

    Tracer *tr_ = nullptr;
    unsigned long seq_ = 0;
    Queue q_;
};

} // namespace fx
