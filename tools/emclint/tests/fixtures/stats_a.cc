// Fixture: stat-dup (same key twice in one file) and stat-registry
// (naming schema, dynamic-prefix schema).  Cross-TU collision lives
// in stats_b.cc.

namespace fx
{

inline void registerStatsA(StatDump &d, int i)
{
    d.put("fixture.commits", 1);
    d.put("fixture.commits", 2);  // [expect: stat-dup]
    d.put("BadKey", 3);  // [expect: stat-registry]
    d.put("Bad-" + std::to_string(i), 4);  // [expect: stat-registry]
    d.put("fixture.core." + std::to_string(i), 5);
    d.put("fixture.cycles", 6);
}

} // namespace fx
