// Fixture: lives under a src/obs/ path — the tracer implementation
// itself may call record() directly; the trace-hook rule exempts it.

namespace fx
{

struct Sink
{
    void flushOne(unsigned long addr)
    {
        tr_->record(addr);
    }

    Tracer *tr_ = nullptr;
};

} // namespace fx
