// Fixture: lives under a src/sweep/ path — the sweep coordinator owns
// process management, so raw fork()/exec*() here is sanctioned and
// must NOT be flagged.

namespace fx
{

inline int spawnShard()
{
    return fork();
}

} // namespace fx
