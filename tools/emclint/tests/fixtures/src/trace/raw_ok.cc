// Fixture: trace-raw-io exemption — src/trace/ is the sanctioned
// owner of the container bytes, so raw I/O and the magic literal are
// legal here (this models src/trace/reader.cc itself).

namespace fx
{

struct SanctionedReader
{
    bool open(const char *path)
    {
        f_ = fopen(path, "rb");
        char head[4];
        fread(head, 1, 4, f_);
        return memcmp(head, "EMCT", 4) == 0;
    }

    void append(const DynUop &d)
    {
        fwrite(&d, sizeof(DynUop), 1, f_);
    }

    FILE *f_ = nullptr;
};

} // namespace fx
