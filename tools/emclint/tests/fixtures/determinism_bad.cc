// Fixture: determinism rules — rng, event-push, raw-new.
// Each expect-marker names the finding its line must produce;
// unmarked lines must stay clean.

namespace fx
{

struct EventyThing
{
    void enqueueRaw()
    {
        events_.push(7);  // [expect: event-push]
    }
    void enqueueElsewhereOk()
    {
        other_.push(7);
    }
    Queue events_;
    Queue other_;
};

struct RandomThing
{
    void seedBadly()
    {
        srand(42);  // [expect: rng]
    }
    int drawBadly()
    {
        return rand();  // [expect: rng]
    }
    void localEngine()
    {
        std::mt19937 gen(123);  // [expect: rng]
        (void)gen;
    }
    std::mt19937 gen_;  // [expect: rng]
};

struct TxnFactory
{
    Transaction *leak()
    {
        return new Transaction();  // [expect: raw-new]
    }
    void drop(Transaction *txn)
    {
        delete txn;  // [expect: raw-new]
    }
};

} // namespace fx
