// Fixture: ckpt-coverage known-good — every exemption category from
// DESIGN.md §10 plus both placements of a justified ckpt-skip.
// Nothing in this file may be flagged.

namespace fx
{

using Cb = std::function<void(int)>;

class Widget
{
public:
    template <class A> void ser(A &ar)
    {
        ar.io(pos_);
        ar.io(dirty_);
    }

private:
    static constexpr int kWays = 4;     // static: not per-instance state
    const int capacity_ = 16;           // const: immutable configuration
    Widget *parent_ = nullptr;          // pointer: reattached on load
    std::function<void()> hook_{};      // wiring, not state
    Cb alias_hook_{};                   // wiring through a type alias
    unsigned long pos_ = 0;
    bool dirty_ = false;
    // ckpt-skip: (derived from capacity_ when the widget is attached)
    unsigned long derived_ = 0;
    int scratch_ = 0;  // ckpt-skip: (fixture: trailing-comment placement)
};

} // namespace fx
