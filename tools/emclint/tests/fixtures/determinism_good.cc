// Fixture: known-good determinism idioms — none of these may be
// flagged. The regex ancestor tripped on several of them.

namespace fx
{

struct GoodCitizen
{
    // A *method* named like a libc spawn/rng call is not the libc
    // call: the receiver disambiguates.
    void delegate(Os &os)
    {
        os.system("fine");
        os.rand();
    }

    // Seeded repo Rng is the sanctioned randomness source.
    unsigned draw(Rng &rng)
    {
        return rng.range(0, 7);
    }

    // new of non-Transaction types is allowed (the pool only owns
    // transactions).
    Widget *make()
    {
        return new Widget();
    }
};

} // namespace fx
