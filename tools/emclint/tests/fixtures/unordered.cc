// Fixture: unordered-iter — the range expression's type must be
// resolved through members, `auto` locals, and type aliases.

namespace fx
{

using Table = std::unordered_map<long, long>;

struct Holder
{
    void iterateMemberDirectly()
    {
        for (auto &kv : map_) {  // [expect: unordered-iter]
            (void)kv;
        }
    }

    void iterateThroughAutoRef()
    {
        auto &ref = map_;
        for (auto &kv : ref) {  // [expect: unordered-iter]
            (void)kv;
        }
    }

    void iterateThroughAlias()
    {
        for (auto &e : tbl_) {  // [expect: unordered-iter]
            (void)e;
        }
    }

    void iterateLocalDirectly()
    {
        std::unordered_set<int> seen;
        for (int v : seen) {  // [expect: unordered-iter]
            (void)v;
        }
    }

    // Sorted-copy iteration is the sanctioned pattern.
    void iterateSortedCopyOk()
    {
        std::vector<long> keys;
        for (auto &kv : map_) {  // lint-ok: unordered-iter (keys are sorted below before use)
            keys.push_back(kv.first);
        }
        std::sort(keys.begin(), keys.end());
        for (long k : keys) {
            (void)k;
        }
    }

    // A call result is unknowable without overload resolution: the
    // token frontend must stay silent rather than guess.
    void iterateCallResultOk()
    {
        for (auto &k : sortedKeys()) {
            (void)k;
        }
    }

    std::unordered_map<int, int> map_;
    Table tbl_;
};

// Iteration over *another* object's exposed unordered member resolves
// through the repo-wide member-type fallback.
inline void dumpOther(Holder &h)
{
    for (auto &kv : h.map_) {  // [expect: unordered-iter]
        (void)kv;
    }
}

} // namespace fx
