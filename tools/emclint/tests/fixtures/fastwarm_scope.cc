// Fixture: the basename starts with "fastwarm", so every function in
// this file is in scope for the depth-0 fastwarm-timing scan (regex
// parity) even without a warm*/fastForward* name.  Only the *named*
// contract seeds the transitive warm-contract walk, so no chain
// findings originate here.

namespace fx
{

struct FastwarmDriver
{
    unsigned long pendingEvents()
    {
        return events_.size();  // [expect: fastwarm-timing]
    }

    // Tag-only helpers in a fastwarm file stay clean.
    unsigned long lineOf(unsigned long a)
    {
        return a >> 6;
    }

    EventQueue events_;
};

} // namespace fx
