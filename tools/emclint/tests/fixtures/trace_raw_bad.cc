// Fixture: trace-raw-io — trace-container bytes are parsed only by
// src/trace/ (plus the legacy v1 reader); everything else must go
// through trace::openTraceFile / probeFile.

namespace fx
{

struct HomebrewTraceReader
{
    void openByHand()
    {
        f_ = fopen("dump.emct", "rb");  // [expect: trace-raw-io]
    }

    void readRecordsByHand(DynUop *buf, unsigned long n)
    {
        fread(buf, sizeof(DynUop), n, f_);  // [expect: trace-raw-io]
    }

    void writeRecordsByHand(const DynUop *buf, unsigned long n)
    {
        fwrite(buf, sizeof(DynUop), n, f_);  // [expect: trace-raw-io]
    }

    bool sniffMagic(const char *head)
    {
        return memcmp(head, "EMCT", 4) == 0;  // [expect: trace-raw-io]
    }

    // Non-trace file I/O stays legal: no .emct path, no DynUop
    // payload, no magic literal.
    void writeLog(const char *line)
    {
        FILE *log = fopen("run.log", "a");
        fwrite(line, 1, 4, log);
    }

    FILE *f_ = nullptr;
};

} // namespace fx
