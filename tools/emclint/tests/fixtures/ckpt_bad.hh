// Fixture: ckpt-field (host address baked into a checkpoint) and
// ckpt-coverage (member silently absent from ser()); a reason-less
// ckpt-skip annotation is itself a finding.

namespace fx
{

class Gadget
{
public:
    template <class A> void ser(A &ar)
    {
        ar.io(count_);
        ar.io(reinterpret_cast<std::uint64_t &>(token_));  // [expect: ckpt-field]
    }

private:
    std::uint64_t count_ = 0;
    std::uint64_t token_ = 0;
    int lost_ = 0;  // [expect: ckpt-coverage]
    int skipped_ = 0;  // ckpt-skip: [expect: lint-ok]
};

} // namespace fx
