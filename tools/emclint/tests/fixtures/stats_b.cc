// Fixture: stat-registry cross-TU collision — "fixture.commits" is
// already registered by stats_a.cc; the later put() would silently
// overwrite it in the flat StatDump map.  A per-file regex can never
// see this.

namespace fx
{

inline void registerStatsB(StatDump &d)
{
    d.put("fixture.commits", 9);  // [expect: stat-registry]
    d.put("fixture.retires", 1);
}

} // namespace fx
