// Fixture: the lint-ok suppression contract.  A justified suppression
// silences the finding (same-line or line-above placement); a
// reason-less or unknown-rule suppression is itself a "lint-ok"
// finding — stale or vague suppressions are how contracts rot.

namespace fx
{

struct Suppressed
{
    void seedJustified()
    {
        srand(1);  // lint-ok: rng (fixture: justified suppression is silent)
    }

    void seedAbove()
    {
        // lint-ok: rng (fixture: annotation on the line above)
        srand(2);
    }

    void seedNoReason()
    {
        srand(3);  // lint-ok: rng [expect: lint-ok]
    }

    void unknownRule()
    {
        // lint-ok: not-a-rule (reason present, rule bogus) [expect: lint-ok]
        seedJustified();
    }
};

} // namespace fx
