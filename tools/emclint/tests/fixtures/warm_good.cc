// Fixture: warming known-good — tag-only warm functions stay clean,
// warm-to-warm calls are each judged on their own merits, and
// detailed-path code may schedule and count freely because no warm
// entry reaches it.

namespace fx
{

struct GoodWarmer
{
    // Tag-only: touches tables, never stats/events/hooks.
    void warmFill(unsigned long a)
    {
        table_.touch(a);
    }

    // Calling another warm-named function is fine: the callee is its
    // own entry point, checked separately.
    void warmAll()
    {
        warmFill(0);
    }

    // Not reachable from any warm entry: free to do timing work.
    void detailedAccess(unsigned long a)
    {
        ++stats_.hits;
        schedule(a + 1);
    }

    Table table_;
    Stats stats_;
};

} // namespace fx
