// Fixture: fastwarm-timing (direct stat mention inside a warm-named
// function) and warm-contract (sink reachable only transitively:
// warmChain -> helperA -> helperB -> schedule()).

namespace fx
{

struct Warmer
{
    void warmTouch(unsigned long a)
    {
        table_.touch(a);
        ++stats_.hits;  // [expect: fastwarm-timing]
    }

    void warmChain(unsigned long a)
    {
        helperA(a);
    }

    void helperA(unsigned long a)
    {
        helperB(a);
    }

    void helperB(unsigned long a)
    {
        schedule(a + 3);  // [expect: warm-contract]
    }

    Table table_;
    Stats stats_;
};

} // namespace fx
