// Fixture: process-spawn — raw process management outside src/sweep/.

namespace fx
{

inline int launchHelper(const char *cmd)
{
    return system(cmd);  // [expect: process-spawn]
}

inline int forkWorker()
{
    return fork();  // [expect: process-spawn]
}

} // namespace fx
