"""Frontend-agnostic semantic model.

Both frontends (libclang and the token fallback) lower a translation
unit to these dataclasses; every rule is written against this model
only, so rule behaviour cannot depend on which frontend produced it
beyond documented precision differences (the clang frontend resolves
types through `auto`, typedefs and overload sets exactly; the token
frontend approximates by name).
"""

from __future__ import annotations

import dataclasses
import re
from typing import Dict, List, Optional, Set

#: Container type names whose iteration order is hash-dependent.
UNORDERED_TYPES = re.compile(
    r"\bunordered_(?:map|set|multimap|multiset)\b")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One rule violation at a source location."""
    path: str
    line: int
    rule: str
    message: str

    def sort_key(self):
        return (self.path, self.line, self.rule, self.message)

    def fingerprint(self) -> str:
        """Location-independent identity used by the baseline file, so
        unrelated edits that shift line numbers don't churn it."""
        return "%s:%s:%s" % (self.path, self.rule, self.message)


@dataclasses.dataclass
class Member:
    """One non-static data member of a class."""
    name: str
    type_text: str
    line: int
    is_static: bool = False
    is_const: bool = False
    is_pointer: bool = False
    is_reference: bool = False
    is_function_like: bool = False  #: std::function / member-fn pointer

    def serializable(self) -> bool:
        """True when ckpt-coverage expects this member in ser().

        Pointers and references cannot appear in a checkpoint at all
        (ckpt::Ar static-asserts on them — they are reattached on
        load), const members are immutable configuration, and
        std::function members are wiring, not state.
        """
        return not (self.is_static or self.is_const or self.is_pointer
                    or self.is_reference or self.is_function_like)


@dataclasses.dataclass
class CallSite:
    """A function or method call inside a function body."""
    callee: str            #: simple name (`push`, `schedule`, ...)
    line: int
    recv: Optional[str] = None   #: receiver tail (`events_` in `a.events_.push`)
    arg_text: str = ""           #: argument text (selected callees only)


@dataclasses.dataclass
class RangeFor:
    """A range-based for statement and its resolved range type."""
    line: int
    range_text: str
    #: Fully resolved type of the range expression when the frontend
    #: could determine it (clang: always; tokens: via decl lookup).
    resolved_type: Optional[str] = None


@dataclasses.dataclass
class MacroUse:
    """An EMC_OBS_POINT (or similar) macro instantiation."""
    name: str
    line: int
    arg_text: str


@dataclasses.dataclass
class StatPut:
    """A StatDump::put() registration."""
    line: int
    key: Optional[str]      #: literal key, or None when dynamic
    key_prefix: str = ""    #: leading literal of a dynamic key, if any


@dataclasses.dataclass
class NewDelete:
    """A raw new/delete expression."""
    line: int
    kind: str       #: "new" | "delete"
    type_or_expr: str


@dataclasses.dataclass
class Function:
    """A function or method definition (bodies only, not declarations)."""
    name: str
    qname: str                      #: e.g. `emc::Cache::warmAccess`
    cls: Optional[str]              #: enclosing/owning class qname
    file: str
    line: int
    end_line: int
    calls: List[CallSite] = dataclasses.field(default_factory=list)
    range_fors: List[RangeFor] = dataclasses.field(default_factory=list)
    macro_uses: List[MacroUse] = dataclasses.field(default_factory=list)
    stat_puts: List[StatPut] = dataclasses.field(default_factory=list)
    news: List[NewDelete] = dataclasses.field(default_factory=list)
    mentions: Set[str] = dataclasses.field(default_factory=set)
    #: identifier -> line of first mention (for identifier-level findings)
    mention_lines: Dict[str, int] = dataclasses.field(
        default_factory=dict)
    #: identifier -> declared type text for locals the frontend could type
    local_types: Dict[str, str] = dataclasses.field(default_factory=dict)

    def mention(self, name: str, line: int) -> None:
        self.mentions.add(name)
        self.mention_lines.setdefault(name, line)


@dataclasses.dataclass
class ClassInfo:
    """A class/struct definition."""
    name: str
    qname: str
    file: str
    line: int
    members: List[Member] = dataclasses.field(default_factory=list)
    method_names: Set[str] = dataclasses.field(default_factory=set)

    def has_ser(self) -> bool:
        return "ser" in self.method_names

    def member(self, name: str) -> Optional[Member]:
        for m in self.members:
            if m.name == name:
                return m
        return None


@dataclasses.dataclass
class TranslationUnit:
    """Everything the rules need to know about one source file."""
    path: str
    lines: List[str]
    classes: List[ClassInfo] = dataclasses.field(default_factory=list)
    functions: List[Function] = dataclasses.field(default_factory=list)
    #: using/typedef aliases visible in this file: name -> aliased type
    aliases: Dict[str, str] = dataclasses.field(default_factory=dict)
    #: `// lint-ok: rule (reason)` suppressions: line -> set of rules
    suppressions: Dict[int, Set[str]] = dataclasses.field(
        default_factory=dict)
    #: `// ckpt-skip: (reason)` annotations: line -> has_reason
    ckpt_skips: Dict[int, bool] = dataclasses.field(default_factory=dict)
    #: annotation syntax errors found while scanning (reported by engine)
    annotation_errors: List["Finding"] = dataclasses.field(
        default_factory=list)
    frontend: str = "tokens"


class Program:
    """The merged cross-TU view rules use for whole-program checks."""

    def __init__(self, tus: List[TranslationUnit]):
        self.tus: List[TranslationUnit] = tus
        self.classes: Dict[str, ClassInfo] = {}
        self.functions: List[Function] = []
        self.functions_by_name: Dict[str, List[Function]] = {}
        self.member_types: Dict[str, str] = {}
        self.aliases: Dict[str, str] = {}
        for tu in tus:
            for ci in tu.classes:
                prev = self.classes.get(ci.qname)
                if prev is None or (not prev.members and ci.members):
                    self.classes[ci.qname] = ci
                elif prev is not None:
                    prev.method_names |= ci.method_names
            for fn in tu.functions:
                self.functions.append(fn)
                self.functions_by_name.setdefault(fn.name, []).append(fn)
            self.aliases.update(tu.aliases)
        for ci in self.classes.values():
            for m in ci.members:
                self.member_types.setdefault(m.name, m.type_text)

    def resolve_alias(self, type_text: str, depth: int = 4) -> str:
        """Expand using/typedef aliases appearing in a type string."""
        out = type_text
        for _ in range(depth):
            changed = False
            for name, target in self.aliases.items():
                pat = r"\b%s\b" % re.escape(name)
                if re.search(pat, out) and name not in target:
                    out = re.sub(pat, target, out)
                    changed = True
            if not changed:
                break
        return out

    def methods_of(self, cls_qname: Optional[str],
                   name: str) -> List[Function]:
        if cls_qname is None:
            return []
        return [f for f in self.functions_by_name.get(name, [])
                if f.cls == cls_qname]
