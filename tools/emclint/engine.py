"""Analysis driver: file collection, frontend selection, rule
execution, suppression and baseline filtering."""

from __future__ import annotations

import dataclasses
import os
from typing import Dict, List, Optional, Sequence, Tuple

from . import annotations, clang_frontend, token_frontend
from .model import Finding, Program, TranslationUnit
from .rules import all_rules, rule_names

SOURCE_EXTS = {".cc", ".cpp", ".cxx", ".hh", ".hpp", ".h"}


@dataclasses.dataclass
class Result:
    findings: List[Finding]
    frontend: str           #: "clang" | "tokens"
    frontend_note: Optional[str]
    files: List[str]


def collect_sources(roots: Sequence[str]) -> List[str]:
    out: List[str] = []
    for root in roots:
        if os.path.isfile(root):
            out.append(root)
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = sorted(d for d in dirnames
                                 if not d.startswith("build"))
            for f in sorted(filenames):
                if os.path.splitext(f)[1] in SOURCE_EXTS:
                    out.append(os.path.join(dirpath, f))
    return out


def pick_frontend(requested: str) -> Tuple[str, Optional[str]]:
    """Resolve 'auto'/'clang'/'tokens' to a usable frontend name plus
    an optional human-readable note."""
    if requested == "tokens":
        return "tokens", None
    ok, why = clang_frontend.available()
    if ok:
        return "clang", None
    if requested == "clang":
        raise RuntimeError(
            "libclang frontend requested but unavailable: %s" % why)
    return "tokens", ("libclang unavailable (%s); "
                      "using the token frontend" % why)


def analyze(roots: Sequence[str], frontend: str = "auto",
            compdb_path: Optional[str] = None,
            rules: Optional[Sequence[str]] = None) -> Result:
    files = collect_sources(roots)
    chosen, note = pick_frontend(frontend)

    compdb = None
    if chosen == "clang" and compdb_path:
        compdb = clang_frontend.load_compdb(compdb_path)

    tus: List[TranslationUnit] = []
    for path in files:
        if chosen == "clang":
            tu = clang_frontend.parse_file(path, compdb)
        else:
            tu = token_frontend.parse_file(path)
        annotations.scan(tu, rule_names())
        tus.append(tu)

    program = Program(tus)
    catalog = all_rules()
    selected = list(rules) if rules else sorted(catalog.keys())
    unknown = [r for r in selected if r not in catalog]
    if unknown:
        raise RuntimeError("unknown rule(s): %s" % ", ".join(unknown))

    findings: List[Finding] = []
    tu_by_path: Dict[str, TranslationUnit] = {t.path: t for t in tus}
    for tu in tus:
        findings.extend(tu.annotation_errors)
    for name in selected:
        rule = catalog[name]()
        for tu in tus:
            findings.extend(rule.check_tu(tu, program))
        findings.extend(rule.check_program(program))

    kept = []
    for f in findings:
        tu = tu_by_path.get(f.path)
        if tu is not None and annotations.suppressed(tu, f):
            continue
        kept.append(f)
    kept = sorted(set(kept), key=lambda f: f.sort_key())
    return Result(findings=kept, frontend=chosen, frontend_note=note,
                  files=files)
