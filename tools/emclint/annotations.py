"""Suppression / annotation comments.

Two comment syntaxes, both requiring a parenthesised reason:

    // lint-ok: <rule> (<reason>)     suppress a finding on this or the
                                      next line (same contract as
                                      tools/lint_sim.py)
    // ckpt-skip: (<reason>)          declare a data member as
                                      intentionally absent from ser()
                                      (ckpt-coverage rule)

A suppression naming an unknown rule, or lacking a reason, is itself a
finding — stale or vague suppressions are how contracts rot.
"""

from __future__ import annotations

import re
from typing import Iterable

from .model import Finding, TranslationUnit

LINT_OK_RE = re.compile(r"//\s*lint-ok:\s*([a-z-]+)(\s*\(.+\))?")
CKPT_SKIP_RE = re.compile(r"//\s*ckpt-skip:(\s*\(.+\))?")


def scan(tu: TranslationUnit, known_rules: Iterable[str]) -> None:
    """Populate tu.suppressions / tu.ckpt_skips / tu.annotation_errors
    from the raw source lines.  An annotation on line N applies to
    findings on N and N+1 (i.e. it may sit on its own line above)."""
    known = set(known_rules)
    for i, raw in enumerate(tu.lines, start=1):
        m = LINT_OK_RE.search(raw)
        if m:
            rule = m.group(1)
            for ln in (i, i + 1):
                tu.suppressions.setdefault(ln, set()).add(rule)
            if rule not in known:
                tu.annotation_errors.append(Finding(
                    tu.path, i, "lint-ok",
                    "unknown rule '%s' in suppression" % rule))
            if not m.group(2):
                tu.annotation_errors.append(Finding(
                    tu.path, i, "lint-ok",
                    "suppression lacks a (reason)"))
        s = CKPT_SKIP_RE.search(raw)
        if s:
            has_reason = bool(s.group(1))
            for ln in (i, i + 1):
                tu.ckpt_skips.setdefault(ln, has_reason)
            if not has_reason:
                tu.annotation_errors.append(Finding(
                    tu.path, i, "lint-ok",
                    "ckpt-skip annotation lacks a (reason)"))


def suppressed(tu: TranslationUnit, finding: Finding) -> bool:
    return finding.rule in tu.suppressions.get(finding.line, ())
