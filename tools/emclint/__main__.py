"""Entry point: `python3 tools/emclint` or `python3 -m emclint`."""

import os
import sys

if __package__ in (None, ""):
    # Executed as a directory (`python3 tools/emclint`): make the
    # package importable from its parent, then re-enter it properly.
    sys.path.insert(0, os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    from emclint.cli import main
else:
    from .cli import main

if __name__ == "__main__":
    sys.exit(main())
