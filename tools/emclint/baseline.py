"""Checked-in baseline: accepted pre-existing findings.

The baseline lets the CI gate stay red-free while a newly-added rule's
historical findings are burned down: `--write-baseline` records the
current findings' fingerprints (path + rule + message, deliberately
line-number free so unrelated edits don't churn the file), and
subsequent runs report only findings *not* in the baseline.

The shipped baseline (tools/emclint/baseline.json) is empty and must
stay empty for src/ — the acceptance bar is annotated suppressions
with reasons, not a bulk waiver file.
"""

from __future__ import annotations

import json
from typing import List

from .model import Finding


def load(path: str) -> List[str]:
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    if not isinstance(data, dict) or data.get("version") != 1:
        raise RuntimeError("%s: not an emclint baseline (version 1)"
                           % path)
    return list(data.get("fingerprints", []))


def write(path: str, findings: List[Finding]) -> None:
    data = {
        "version": 1,
        "comment": "emclint accepted-findings baseline; regenerate "
                   "with --write-baseline",
        "fingerprints": sorted({f.fingerprint() for f in findings}),
    }
    with open(path, "w", encoding="utf-8") as f:
        json.dump(data, f, indent=2, sort_keys=True)
        f.write("\n")


def filter_known(findings: List[Finding],
                 fingerprints: List[str]) -> List[Finding]:
    known = set(fingerprints)
    return [f for f in findings if f.fingerprint() not in known]
