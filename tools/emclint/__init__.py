"""emclint — AST-grounded static analysis for the simulator's
determinism, checkpoint, and warming contracts (DESIGN.md §10).

The repo's hard guarantees — bit-identical checkpoint restore (§7),
byte-identical sharded sweeps (§9), and fast-warm equivalence (§8) —
are behavioural contracts that ordinary compilers do not check.
emclint checks them statically:

  * a shared semantic model (`emclint.model`) describing classes,
    members, functions, call sites, range-for statements, trace-hook
    macro uses and stat registrations;
  * two frontends that populate it: `clang_frontend` (precise, via
    libclang / `clang.cindex` over CMake's compile_commands.json) and
    `token_frontend` (a dependency-free structural parser used when
    libclang is not installed — same rules, slightly coarser types);
  * a rule engine (`emclint.rules`) with one module per rule family,
    per-rule fixtures under tests/emclint/fixtures, and findings that
    survive `// lint-ok: <rule> (reason)` suppression and the checked-in
    baseline only when they are real.

Run it as `python3 tools/emclint [paths...]`; see `--help` for output
formats (text / json / sarif), baseline handling and frontend
selection.  `tools/lint_sim.py` remains the regex fallback for
environments without Python ≥3.8.
"""

__version__ = "1.0"
