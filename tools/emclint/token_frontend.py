"""Token-level structural frontend (the no-dependency fallback).

Parses one translation unit into the shared model without a real
compiler: a recursive scope walk over the lexer's token stream tracks
namespaces, class bodies, member declarations and function definitions,
and a body scan extracts call sites, range-for statements, macro uses,
stat registrations and new/delete expressions.

Precision notes vs the clang frontend:
  * types are recorded as spelled (aliases are expanded by
    Program.resolve_alias, `auto` locals through initializer lookup);
  * calls are resolved by name, not overload;
  * template metaprogramming beyond ordinary class/function templates
    is skipped structurally (balanced braces), never mis-attributed.

That is enough for every rule in the catalog to be exact on this
codebase's idiom, and keeps emclint runnable anywhere Python runs.
"""

from __future__ import annotations

import os
from typing import Dict, List, Optional, Tuple

from .lexer import Token, tokenize
from .model import (CallSite, ClassInfo, Function, MacroUse, Member,
                    NewDelete, RangeFor, StatPut, TranslationUnit)

_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "catch", "throw", "new", "delete", "static_cast", "dynamic_cast",
    "const_cast", "reinterpret_cast", "decltype", "noexcept", "assert",
    "case", "do", "else", "goto", "defined", "alignas", "co_await",
    "co_return", "co_yield", "requires",
}

_SPECIFIERS = {
    "static", "const", "mutable", "constexpr", "inline", "volatile",
    "extern", "thread_local", "constinit", "consteval", "explicit",
    "virtual", "typename", "register",
}

_CLASS_KEYS = {"class", "struct", "union"}


def parse_file(path: str) -> TranslationUnit:
    with open(path, encoding="utf-8", errors="replace") as f:
        text = f.read()
    tu = TranslationUnit(path=path, lines=text.splitlines())
    toks = tokenize(text)
    _Parser(toks, tu).parse()
    return tu


class _Parser:
    def __init__(self, toks: List[Token], tu: TranslationUnit):
        self.toks = toks
        self.tu = tu
        self.n = len(toks)

    # ---- token helpers -------------------------------------------------

    def tok(self, i: int) -> Optional[Token]:
        return self.toks[i] if 0 <= i < self.n else None

    def text(self, i: int) -> str:
        t = self.tok(i)
        return t.text if t else ""

    def skip_balanced(self, i: int, open_c: str, close_c: str) -> int:
        """i points at `open_c`; return index just past its match."""
        depth = 0
        while i < self.n:
            t = self.toks[i].text
            if t == open_c:
                depth += 1
            elif t == close_c:
                depth -= 1
                if depth == 0:
                    return i + 1
            i += 1
        return self.n

    def skip_template_args(self, i: int) -> int:
        """i points at '<'; skip a balanced template argument list,
        ignoring comparison-operator ambiguity by bailing at ';'."""
        depth = 0
        while i < self.n:
            t = self.toks[i].text
            if t == "<":
                depth += 1
            elif t == ">":
                depth -= 1
                if depth == 0:
                    return i + 1
            elif t == ">>":
                depth -= 2
                if depth <= 0:
                    return i + 1
            elif t in (";", "{"):
                return i  # not template args after all
            elif t == "(":
                i = self.skip_balanced(i, "(", ")") - 1
            i += 1
        return self.n

    # ---- top-level parse -----------------------------------------------

    def parse(self) -> None:
        self.parse_decls(0, self.n, [], None)

    def parse_decls(self, i: int, end: int, scope: List[str],
                    cls: Optional[ClassInfo]) -> int:
        """Parse declarations in [i, end).  `scope` is the namespace /
        class qualification stack; `cls` the enclosing class, if any."""
        while i < end and i < self.n:
            t = self.toks[i]
            x = t.text
            if x == "}":
                return i + 1
            if x == ";":
                i += 1
                continue
            if x == "namespace":
                i = self.parse_namespace(i, scope)
                continue
            if x == "template":
                j = i + 1
                if self.text(j) == "<":
                    j = self.skip_template_args(j)
                i = j
                continue
            if x in ("using", "typedef"):
                i = self.parse_alias(i)
                continue
            if x == "enum":
                i = self.skip_enum(i)
                continue
            if x in ("friend", "static_assert"):
                i = self.skip_statement(i)
                continue
            if x in ("public", "private", "protected") \
                    and self.text(i + 1) == ":":
                i += 2
                continue
            if x in _CLASS_KEYS:
                i = self.parse_class(i, scope, cls)
                continue
            if x == "extern" and self.tok(i + 1) \
                    and self.tok(i + 1).kind == "str":
                i += 2  # extern "C" [ { ... } handled by recursion ]
                continue
            i = self.parse_declaration(i, scope, cls)
        return i

    def parse_namespace(self, i: int, scope: List[str]) -> int:
        j = i + 1
        parts: List[str] = []
        while self.tok(j) and (self.toks[j].kind == "id"
                              or self.text(j) == "::"):
            if self.toks[j].kind == "id":
                parts.append(self.toks[j].text)
            j += 1
        if self.text(j) == "=":  # namespace alias
            return self.skip_statement(j)
        if self.text(j) != "{":
            return self.skip_statement(j)
        return self.parse_decls(j + 1, self.n, scope + parts, None)

    def parse_alias(self, i: int) -> int:
        """Record `using N = type;` / `typedef type N;` aliases."""
        kw = self.text(i)
        j = i + 1
        stmt: List[Token] = []
        while j < self.n and self.text(j) != ";":
            if self.text(j) == "{":
                j = self.skip_balanced(j, "{", "}")
                continue
            stmt.append(self.toks[j])
            j += 1
        if kw == "using":
            # `using namespace x;` / `using x::y;` carry no '='.
            texts = [t.text for t in stmt]
            if "=" in texts:
                eq = texts.index("=")
                if eq == 1 and stmt[0].kind == "id":
                    self.tu.aliases[stmt[0].text] = _join(stmt[eq + 1:])
        else:  # typedef type N;
            if stmt and stmt[-1].kind == "id":
                self.tu.aliases[stmt[-1].text] = _join(stmt[:-1])
        return j + 1

    def skip_enum(self, i: int) -> int:
        j = i + 1
        while j < self.n and self.text(j) not in ("{", ";"):
            j += 1
        if self.text(j) == "{":
            j = self.skip_balanced(j, "{", "}")
        while j < self.n and self.text(j) != ";":
            j += 1
        return j + 1

    def skip_statement(self, i: int) -> int:
        while i < self.n and self.text(i) != ";":
            if self.text(i) == "{":
                i = self.skip_balanced(i, "{", "}")
                continue
            if self.text(i) == "(":
                i = self.skip_balanced(i, "(", ")")
                continue
            i += 1
        return i + 1

    # ---- classes -------------------------------------------------------

    def parse_class(self, i: int, scope: List[str],
                    outer: Optional[ClassInfo]) -> int:
        line = self.toks[i].line
        j = i + 1
        name = ""
        while j < self.n:
            t = self.toks[j]
            if t.kind == "id" and t.text not in ("final", "alignas"):
                name = t.text
            elif t.text == "<":
                j = self.skip_template_args(j) - 1
            elif t.text in ("{", ";", ":", "("):
                break
            j += 1
        if self.text(j) == ";":  # forward declaration
            return j + 1
        if self.text(j) == "(":  # e.g. `struct` used in a cast/expr
            return self.skip_statement(j)
        if self.text(j) == ":":  # base clause
            while j < self.n and self.text(j) != "{":
                if self.text(j) == "<":
                    j = self.skip_template_args(j)
                    continue
                if self.text(j) == ";":
                    return j + 1
                j += 1
        if self.text(j) != "{":
            return self.skip_statement(j)
        qname = "::".join(scope + [name]) if name else \
            "::".join(scope + ["<anon>"])
        ci = ClassInfo(name=name or "<anon>", qname=qname,
                       file=self.tu.path, line=line)
        self.tu.classes.append(ci)
        inner_scope = scope + [name] if name else scope
        j = self.parse_decls(j + 1, self.n, inner_scope, ci)
        # Trailing declarators (`struct {...} x;`) become members of the
        # *outer* class when we are inside one.
        decl: List[Token] = []
        while j < self.n and self.text(j) != ";":
            decl.append(self.toks[j])
            j += 1
        if outer is not None and decl:
            for d in decl:
                if d.kind == "id":
                    outer.members.append(Member(
                        name=d.text, type_text=qname, line=d.line))
        return j + 1

    # ---- declarations at class / namespace scope -----------------------

    def parse_declaration(self, i: int, scope: List[str],
                          cls: Optional[ClassInfo]) -> int:
        """One declaration starting at i: a member variable, a function
        declaration, or a function definition (whose body is mined)."""
        start = i
        toks: List[Token] = []
        angle = 0
        saw_eq = False
        j = i
        while j < self.n:
            x = self.text(j)
            if x == ";":
                return self._finish_decl(toks, start, scope, cls, None,
                                         j + 1)
            if x == "{" :
                return self._finish_decl(toks, start, scope, cls, j,
                                         None)
            if x == "(":
                k = self.skip_balanced(j, "(", ")")
                toks.extend(self.toks[j:k])
                j = k
                continue
            if x == "[":
                k = self.skip_balanced(j, "[", "]")
                toks.extend(self.toks[j:k])
                j = k
                continue
            if x == "<" and not saw_eq and toks \
                    and toks[-1].kind == "id":
                k = self.skip_template_args(j)
                if k > j + 1:
                    toks.extend(self.toks[j:k])
                    j = k
                    continue
            if x == "=":
                saw_eq = True
            toks.append(self.toks[j])
            j += 1
        return self.n

    def _finish_decl(self, toks: List[Token], start: int,
                     scope: List[str], cls: Optional[ClassInfo],
                     body_open: Optional[int],
                     resume: Optional[int]) -> int:
        """Classify a gathered declaration.  body_open is the index of
        a '{' (function definition or brace-initialised member)."""
        fn_info = _function_shape(toks)
        if body_open is not None:
            if fn_info is not None:
                name, qual = fn_info
                end = self.skip_balanced(body_open, "{", "}")
                self._record_function(name, qual, toks, scope, cls,
                                      body_open + 1, end - 1)
                return end
            # Brace-initialised member: `std::vector<int> v_{};` —
            # consume the initialiser, keep scanning to ';'.
            end = self.skip_balanced(body_open, "{", "}")
            j = end
            extra = list(toks)
            while j < self.n and self.text(j) != ";":
                if self.text(j) == "{":
                    j = self.skip_balanced(j, "{", "}")
                    continue
                extra.append(self.toks[j])
                j += 1
            if cls is not None:
                self._record_members(extra, cls, had_init=True)
            return j + 1
        # Ended at ';'.
        if fn_info is not None:
            name, qual = fn_info
            if cls is not None and not qual:
                cls.method_names.add(name)
            return resume
        if cls is not None:
            self._record_members(toks, cls, had_init=False)
        return resume

    def _record_members(self, toks: List[Token], cls: ClassInfo,
                        had_init: bool) -> None:
        if not toks:
            return
        groups = _split_declarators(toks)
        if not groups or not groups[0]:
            return
        first = _member_from_decl(groups[0])
        if first is None:
            return
        cls.members.append(first)
        # Subsequent declarators share the first one's type.
        for g in groups[1:]:
            if not g:
                continue
            m = _member_from_decl(g, type_hint=first.type_text)
            if m is not None:
                m.is_static = first.is_static
                m.is_const = first.is_const
                cls.members.append(m)

    def _record_function(self, name: str, qual: List[str],
                         toks: List[Token], scope: List[str],
                         cls: Optional[ClassInfo],
                         body_begin: int, body_end: int) -> None:
        if cls is not None:
            cls_q: Optional[str] = cls.qname
        elif qual:
            cls_q = "::".join(scope + qual)
        else:
            cls_q = None
        qname = (cls_q + "::" + name) if cls_q else \
            "::".join(scope + [name])
        fn = Function(
            name=name, qname=qname, cls=cls_q, file=self.tu.path,
            line=toks[0].line if toks else self.toks[body_begin].line,
            end_line=self.toks[body_end].line
            if body_end < self.n else 0)
        if cls is not None:
            cls.method_names.add(name)
        _BodyScanner(self, fn).scan(body_begin, body_end)
        self.tu.functions.append(fn)


# ---- declaration shape helpers -----------------------------------------


def _join(toks: List[Token]) -> str:
    out: List[str] = []
    for t in toks:
        if out and t.kind == "id" and out[-1] and \
                (out[-1][-1].isalnum() or out[-1][-1] == "_"):
            out.append(" ")
        out.append(t.text)
    return "".join(out)


def _function_shape(toks: List[Token]
                    ) -> Optional[Tuple[str, List[str]]]:
    """If `toks` look like a function declarator, return (name,
    class-qualifier parts); else None.  The signature shape is: an
    identifier (or operator-id) immediately followed by a top-level
    '(' parameter list, with only qualifiers after it."""
    depth_p = depth_a = 0
    for k, t in enumerate(toks):
        x = t.text
        if x == "(" and depth_a == 0 and depth_p == 0:
            prev = toks[k - 1] if k else None
            if prev is None:
                return None
            if prev.kind != "id":
                # operator() / operator== etc.
                for b in range(k - 1, max(-1, k - 4), -1):
                    if toks[b].text == "operator":
                        return "operator", _qual_parts(toks, b)
                return None
            if prev.text in _SPECIFIERS or prev.text in _KEYWORDS:
                return None
            # Constructor-style member `Foo bar(args);` at namespace
            # scope is indistinguishable; inside a class the idiom in
            # this codebase is brace or '=' init, so call it a function.
            return prev.text, _qual_parts(toks, k - 1)
        if x == "(":
            depth_p += 1
        elif x == ")":
            depth_p -= 1
        elif x == "<":
            depth_a += 1
        elif x == ">":
            depth_a = max(0, depth_a - 1)
        elif x == ">>":
            depth_a = max(0, depth_a - 2)
        elif x == "=" and depth_p == 0 and depth_a == 0:
            return None
    return None


def _qual_parts(toks: List[Token], name_idx: int) -> List[str]:
    """Class qualifiers preceding toks[name_idx]: `A::B::name` -> [A,B]."""
    parts: List[str] = []
    k = name_idx - 1
    while k >= 1 and toks[k].text == "::" and toks[k - 1].kind == "id":
        parts.insert(0, toks[k - 1].text)
        k -= 2
        # skip template args on the qualifier: A<T>::name
        if k >= 0 and toks[k].text == ">":
            depth = 0
            while k >= 0:
                if toks[k].text in (">", ">>"):
                    depth += 1 if toks[k].text == ">" else 2
                elif toks[k].text == "<":
                    depth -= 1
                    if depth <= 0:
                        k -= 1
                        break
                k -= 1
    return parts


def _split_declarators(toks: List[Token]) -> List[List[Token]]:
    """Split `int a, b` on top-level commas."""
    out: List[List[Token]] = [[]]
    depth_p = depth_a = depth_b = 0
    for t in toks:
        x = t.text
        if x == "(":
            depth_p += 1
        elif x == ")":
            depth_p -= 1
        elif x == "[":
            depth_b += 1
        elif x == "]":
            depth_b -= 1
        elif x == "<":
            depth_a += 1
        elif x in (">", ">>"):
            depth_a = max(0, depth_a - (1 if x == ">" else 2))
        elif x == "," and depth_p == depth_a == depth_b == 0:
            out.append([])
            continue
        out[-1].append(t)
    return out


def _member_from_decl(toks: List[Token], type_hint: str = ""
                      ) -> Optional[Member]:
    """Extract one Member from declarator tokens (specifiers + type +
    name [+ init]).  Returns None for things that are not data
    members (e.g. pure specifier runs)."""
    is_static = any(t.text == "static" for t in toks)
    is_const = any(t.text == "const" for t in toks)
    is_constexpr = any(t.text == "constexpr" for t in toks)
    # Cut the initialiser / bitfield width off.
    cut = len(toks)
    depth_p = depth_a = 0
    for k, t in enumerate(toks):
        x = t.text
        if x == "(":
            depth_p += 1
        elif x == ")":
            depth_p -= 1
        elif x == "<":
            depth_a += 1
        elif x in (">", ">>"):
            depth_a = max(0, depth_a - (1 if x == ">" else 2))
        elif x in ("=", "{") and depth_p == 0 and depth_a == 0:
            cut = k
            break
        elif x == ":" and depth_p == 0 and depth_a == 0 and k > 0:
            cut = k
            break
        elif x == "[" and depth_p == 0 and depth_a == 0 and k > 0 \
                and toks[k - 1].kind == "id":
            # Array declarator: `bool valid_[kArchRegs]` — the member
            # name is the id *before* the bracket, not an extent id
            # inside it.
            cut = k
            break
    decl = toks[:cut]
    name = None
    line = toks[0].line if toks else 0
    depth_p = depth_a = 0
    for t in decl:
        x = t.text
        if x == "(":
            depth_p += 1
        elif x == ")":
            depth_p -= 1
        elif x == "<":
            depth_a += 1
        elif x in (">", ">>"):
            depth_a = max(0, depth_a - (1 if x == ">" else 2))
        elif t.kind == "id" and depth_p == 0 and depth_a == 0 \
                and x not in _SPECIFIERS:
            name = t
    if name is None:
        return None
    type_toks = [t for t in decl
                 if t is not name and t.text not in _SPECIFIERS]
    type_text = type_hint or _join(type_toks)
    is_pointer = any(t.text == "*" for t in decl)
    is_reference = any(t.text in ("&", "&&") for t in decl)
    fn_like = "function<" in type_text.replace(" ", "") \
        or "(*" in type_text.replace(" ", "")
    return Member(name=name.text, type_text=type_text, line=name.line,
                  is_static=is_static or is_constexpr,
                  is_const=is_const, is_pointer=is_pointer,
                  is_reference=is_reference, is_function_like=fn_like)


# ---- function body mining ----------------------------------------------

_RECV_CALLEES = {"EMC_OBS_POINT", "put", "ckptSave", "ckptLoad",
                 "record", "fopen", "fread", "fwrite"}


class _BodyScanner:
    """Extract calls, range-fors, macro uses, stat puts, new/delete and
    identifier mentions from a function body token range."""

    def __init__(self, parser: _Parser, fn: Function):
        self.p = parser
        self.fn = fn

    def scan(self, begin: int, end: int) -> None:
        toks = self.p.toks
        i = begin
        stmt_start = True
        while i < end:
            t = toks[i]
            x = t.text
            if t.kind == "id":
                self.fn.mention(x, t.line)
            if x in (";", "{", "}"):
                stmt_start = True
                i += 1
                continue
            if x == "for" and self.p.text(i + 1) == "(":
                i = self.handle_for(i, end)
                stmt_start = False
                continue
            if x == "new" and self.p.tok(i + 1) \
                    and self.p.tok(i + 1).kind == "id":
                self.fn.news.append(NewDelete(
                    line=t.line, kind="new",
                    type_or_expr=self.p.text(i + 1)))
            if x == "delete":
                j = i + 1
                if self.p.text(j) == "[":
                    j = self.p.skip_balanced(j, "[", "]")
                if self.p.tok(j) and self.p.tok(j).kind == "id":
                    self.fn.news.append(NewDelete(
                        line=t.line, kind="delete",
                        type_or_expr=self.p.text(j)))
            if t.kind == "id" and self.p.text(i + 1) == "(" \
                    and x not in _KEYWORDS:
                self.record_call(i)
            if t.kind == "id" and x.endswith("_cast") \
                    and self.p.text(i + 1) == "<":
                pass  # casts are not calls
            if stmt_start and t.kind == "id":
                self.maybe_local_decl(i, end)
            if t.kind == "id":
                stmt_start = False
            i += 1

    def record_call(self, i: int) -> None:
        toks = self.p.toks
        t = toks[i]
        recv = None
        if i >= 2 and toks[i - 1].text in (".", "->") \
                and toks[i - 2].kind in ("id",) :
            recv = toks[i - 2].text
        elif i >= 2 and toks[i - 1].text in (".", "->") \
                and toks[i - 2].text in (")", "]"):
            recv = "<expr>"
        arg_text = ""
        if t.text in _RECV_CALLEES:
            close = self.p.skip_balanced(i + 1, "(", ")")
            arg_text = _join(toks[i + 2:close - 1])
        cs = CallSite(callee=t.text, line=t.line, recv=recv,
                      arg_text=arg_text)
        self.fn.calls.append(cs)
        if t.text == "EMC_OBS_POINT":
            self.fn.macro_uses.append(MacroUse(
                name=t.text, line=t.line, arg_text=arg_text))
        if t.text == "put":
            key = None
            prefix = ""
            j = i + 2
            if self.p.tok(j) and self.p.tok(j).kind == "str":
                lit = self.p.tok(j).text.strip('"')
                if self.p.text(j + 1) == ",":
                    key = lit
                else:
                    prefix = lit
            self.fn.stat_puts.append(StatPut(
                line=t.line, key=key, key_prefix=prefix))

    def handle_for(self, i: int, end: int) -> int:
        """Parse `for (...)`: detect a range-for's ':' at paren depth 1
        and record the range expression."""
        toks = self.p.toks
        open_i = i + 1
        close = self.p.skip_balanced(open_i, "(", ")")
        depth = 0
        colon = None
        semis = 0
        for k in range(open_i, close):
            x = toks[k].text
            if x == "(":
                depth += 1
            elif x == ")":
                depth -= 1
            elif x == ";" and depth == 1:
                semis += 1
            elif x == ":" and depth == 1 and colon is None:
                colon = k
        if colon is not None and semis == 0:
            rng = toks[colon + 1:close - 1]
            self.fn.range_fors.append(RangeFor(
                line=toks[i].line, range_text=_join(rng)))
        # Header tokens still count as mentions/calls (e.g. rand() in a
        # loop condition); the loop *body* is scanned by the main loop.
        for k in range(open_i + 1, close - 1):
            t = toks[k]
            if t.kind == "id":
                self.fn.mention(t.text, t.line)
                if self.p.text(k + 1) == "(" and t.text not in _KEYWORDS:
                    self.record_call(k)
        return close

    def maybe_local_decl(self, i: int, end: int) -> None:
        """Best-effort local variable typing for unordered-iter
        resolution: `auto x = expr;`, `auto &x = expr;`, and direct
        `std::unordered_map<...> x...;` declarations."""
        toks = self.p.toks
        x = toks[i].text
        if x == "auto":
            j = i + 1
            while self.p.text(j) in ("&", "&&", "*", "const"):
                j += 1
            if self.p.tok(j) and self.p.tok(j).kind == "id" \
                    and self.p.text(j + 1) == "=":
                name = self.p.text(j)
                k = j + 2
                expr: List[Token] = []
                while k < end and self.p.text(k) != ";":
                    expr.append(toks[k])
                    k += 1
                self.fn.local_types.setdefault(
                    name, "auto=" + _join(expr))
            return
        if x in ("std", "unordered_map", "unordered_set"):
            # std::unordered_xxx<...> name ...
            j = i
            if x == "std" and self.p.text(j + 1) == "::":
                j += 2
            if self.p.text(j).startswith("unordered_"):
                base = j
                j += 1
                if self.p.text(j) == "<":
                    j = self.p.skip_template_args(j)
                if self.p.tok(j) and self.p.tok(j).kind == "id":
                    self.fn.local_types.setdefault(
                        self.p.text(j),
                        _join(toks[i:j]))


def parse_many(paths: List[str]) -> List[TranslationUnit]:
    return [parse_file(p) for p in sorted(paths)]
