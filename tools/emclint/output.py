"""Finding writers: text (lint_sim-compatible), JSON, SARIF 2.1.0.

SARIF is what CI uploads for inline PR annotations
(github/codeql-action/upload-sarif); the rule catalog rides along in
tool.driver.rules so the annotations carry full descriptions.
"""

from __future__ import annotations

import json
from typing import List

from .model import Finding
from .rules import all_rules


def to_text(findings: List[Finding]) -> str:
    return "".join("%s:%d: [%s] %s\n"
                   % (f.path, f.line, f.rule, f.message)
                   for f in findings)


def to_json(findings: List[Finding], frontend: str) -> str:
    return json.dumps({
        "tool": "emclint",
        "version": 1,
        "frontend": frontend,
        "findings": [
            {"file": f.path, "line": f.line, "rule": f.rule,
             "message": f.message, "fingerprint": f.fingerprint()}
            for f in findings
        ],
    }, indent=2) + "\n"


def to_sarif(findings: List[Finding], frontend: str) -> str:
    catalog = all_rules()
    rule_ids = sorted(catalog.keys())
    rules = [{
        "id": rid,
        "shortDescription": {"text": rid},
        "fullDescription": {"text": catalog[rid].description},
        "defaultConfiguration": {"level": "error"},
    } for rid in rule_ids]
    # `lint-ok` findings (bad suppressions) have no catalog entry.
    extra = sorted({f.rule for f in findings} - set(rule_ids))
    for rid in extra:
        rules.append({"id": rid,
                      "shortDescription": {"text": rid},
                      "defaultConfiguration": {"level": "error"}})
    index = {r["id"]: i for i, r in enumerate(rules)}
    results = [{
        "ruleId": f.rule,
        "ruleIndex": index[f.rule],
        "level": "error",
        "message": {"text": f.message},
        "partialFingerprints": {"emclint/v1": f.fingerprint()},
        "locations": [{
            "physicalLocation": {
                "artifactLocation": {"uri": f.path,
                                     "uriBaseId": "SRCROOT"},
                "region": {"startLine": max(1, f.line)},
            },
        }],
    } for f in findings]
    sarif = {
        "$schema": "https://raw.githubusercontent.com/oasis-tcs/"
                   "sarif-spec/master/Schemata/sarif-schema-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {
                "driver": {
                    "name": "emclint",
                    "informationUri":
                        "https://example.invalid/emclint",
                    "version": "1.0",
                    "properties": {"frontend": frontend},
                    "rules": rules,
                },
            },
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }
    return json.dumps(sarif, indent=2) + "\n"
