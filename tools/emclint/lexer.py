"""A small C++ lexer for the token frontend.

Produces (kind, text, line) tokens with comments and preprocessor
directives stripped but line numbers preserved, so findings point at
real source lines.  Kinds: `id`, `num`, `str`, `chr`, `punct`.

This is a *lexer*, not a preprocessor: macros are not expanded (the
token frontend treats `EMC_OBS_POINT(...)` as a call-shaped construct,
which is exactly what the trace-hook rule wants), and `#include`s are
not followed (the engine parses every file under the analysis roots,
which covers all first-party headers).
"""

from __future__ import annotations

import dataclasses
from typing import List

_PUNCT3 = {"<<=", ">>=", "->*", "...", "<=>"}
_PUNCT2 = {"::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=",
           "&&", "||", "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
           ".*", "##"}


@dataclasses.dataclass(frozen=True)
class Token:
    kind: str
    text: str
    line: int


def _is_id_start(c: str) -> bool:
    return c.isalpha() or c == "_"


def _is_id(c: str) -> bool:
    return c.isalnum() or c == "_"


def tokenize(text: str) -> List[Token]:
    toks: List[Token] = []
    i = 0
    n = len(text)
    line = 1
    at_line_start = True
    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            at_line_start = True
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Preprocessor directive: skip the logical line (continuations).
        if c == "#" and at_line_start:
            while i < n:
                if text[i] == "\\" and i + 1 < n and text[i + 1] == "\n":
                    line += 1
                    i += 2
                    continue
                if text[i] == "\n":
                    break
                i += 1
            continue
        at_line_start = False
        # Comments.
        if c == "/" and i + 1 < n:
            if text[i + 1] == "/":
                while i < n and text[i] != "\n":
                    i += 1
                continue
            if text[i + 1] == "*":
                end = text.find("*/", i + 2)
                if end < 0:
                    end = n
                line += text.count("\n", i, end)
                i = end + 2
                continue
        # Raw string literal R"delim( ... )delim".
        if c == "R" and i + 1 < n and text[i + 1] == '"':
            j = text.find("(", i + 2)
            if 0 < j < i + 20:
                delim = text[i + 2:j]
                close = ")" + delim + '"'
                end = text.find(close, j + 1)
                if end < 0:
                    end = n
                lit = text[i:end + len(close)]
                toks.append(Token("str", lit, line))
                line += lit.count("\n")
                i = end + len(close)
                continue
        # String / char literals (with escapes).
        if c in "\"'":
            j = i + 1
            while j < n and text[j] != c:
                if text[j] == "\\":
                    j += 1
                elif text[j] == "\n":
                    break  # unterminated; tolerate
                j += 1
            lit = text[i:j + 1]
            toks.append(Token("str" if c == '"' else "chr", lit, line))
            i = j + 1
            continue
        # Identifiers / keywords.
        if _is_id_start(c):
            j = i + 1
            while j < n and _is_id(text[j]):
                j += 1
            toks.append(Token("id", text[i:j], line))
            i = j
            continue
        # Numbers (incl. hex, digit separators, suffixes, floats).
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            j = i + 1
            while j < n and (text[j].isalnum() or text[j] in "._'"
                             or (text[j] in "+-"
                                 and text[j - 1] in "eEpP")):
                j += 1
            toks.append(Token("num", text[i:j], line))
            i = j
            continue
        # Punctuation, longest match first.
        if text[i:i + 3] in _PUNCT3:
            toks.append(Token("punct", text[i:i + 3], line))
            i += 3
            continue
        if text[i:i + 2] in _PUNCT2:
            toks.append(Token("punct", text[i:i + 2], line))
            i += 2
            continue
        toks.append(Token("punct", c, line))
        i += 1
    return toks
