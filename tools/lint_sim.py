#!/usr/bin/env python3
"""Simulator-specific determinism and hygiene lint (DESIGN.md 5d).

Rules (stdlib-only, regex-based -- fast enough to run on every CI push):

  rng            No rand()/srand()/time()/clock()/std::random_device or
                 <random> engines outside src/common/rng.hh.  All
                 randomness must flow through the seeded Rng so runs are
                 reproducible.
  unordered-iter No range-for iteration over unordered_map/unordered_set
                 members.  Hash-order iteration feeding stats or output
                 makes runs depend on pointer values / libstdc++ version.
                 (Scans declarations repo-wide first, then flags
                 range-fors whose range expression names such a member.)
  raw-new        No raw new/delete of Transaction objects outside the
                 slab pool.  Transactions live in System's IdSlabPool;
                 raw allocation bypasses leak accounting.
  event-push     No direct events_.push(...) outside System::schedule().
                 The schedule API clamps cycles and feeds the
                 EventQueueChecker mirror; bypassing it breaks both.
  stat-dup       The same stat key must not be put() twice in one file.
                 A stat registered twice silently overwrites the first
                 value in the output map.
  trace-hook     Trace hooks must go through the EMC_OBS_POINT macro
                 (src/obs/obs.hh) -- no direct Tracer::record() calls
                 outside src/obs -- and hook argument expressions must
                 be side-effect free (no ++/--/assignment): a stripped
                 EMC_SIM_TRACE=OFF build does not evaluate them, so a
                 side effect there silently changes simulation
                 behaviour between build flavours.
  fastwarm-timing
                 Functional-warming code (fastwarm.* files plus any
                 warmXxx()/fastForwardXxx() function region) must stay
                 tag-only: no event scheduling, stat mutation, traffic
                 accounting, or observability hooks.  The warming
                 contract (DESIGN.md #8) promises that fast-forwarded
                 and detailed-warmed runs produce identical measured
                 stats; a timing or stat side effect on the warm path
                 silently breaks that equivalence.
  process-spawn  No raw fork()/vfork()/system()/popen()/exec*()/
                 posix_spawn() outside src/sweep/.  Process management
                 lives in the sweep coordinator (DESIGN.md #9): an ad
                 hoc fork elsewhere inherits the simulator's open stat
                 streams, trace files, and checkpoint fds, and a child
                 that exits through atexit handlers corrupts them.

  ckpt-field     Serialization code (ser()/ckptSer()/ckptSave()/
                 ckptLoad() bodies, including lambdas passed to the
                 ckptSave/ckptLoad hooks) must not write raw pointers
                 or host addresses: no reinterpret_cast, uintptr_t or
                 intptr_t inside a serialization region.  A pointer
                 value baked into a checkpoint is meaningless in the
                 restoring process and breaks the byte-identical-image
                 guarantee (DESIGN.md #7); serialize stable ids and
                 rebuild pointers on load instead.

A finding on line N is suppressed by an annotation on line N or N-1:

    // lint-ok: <rule> (<reason>)

The reason is mandatory: suppressions without a parenthesised
justification are themselves findings.

Exit status: 0 = clean, 1 = findings, 2 = usage error.
"""

import os
import re
import sys

SOURCE_EXTS = {".cc", ".cpp", ".cxx", ".hh", ".hpp", ".h"}

RULES = ("rng", "unordered-iter", "raw-new", "event-push", "stat-dup",
         "trace-hook", "ckpt-field", "fastwarm-timing",
         "process-spawn")

# rng: tokens that introduce nondeterminism or wall-clock dependence.
RNG_RE = re.compile(
    r"\b(?:std::)?(?:rand|srand|random_device|mt19937(?:_64)?|"
    r"default_random_engine|minstd_rand0?)\s*[({]"
    r"|\btime\s*\(\s*(?:NULL|nullptr|0)?\s*\)"
    r"|\bclock\s*\(\s*\)"
)
RNG_EXEMPT = ("src/common/rng.hh", "src/common/rng.cc")

# unordered-iter pass 1: member declarations of unordered containers.
UNORDERED_DECL_RE = re.compile(
    r"\bstd::unordered_(?:map|set|multimap|multiset)\s*<[^;{}]*>\s+"
    r"(\w+)\s*(?:=[^;]*)?;"
)

# raw-new: allocation of transactions outside the slab pool.
RAW_NEW_RE = re.compile(r"\bnew\s+Transaction\b|\bdelete\s+\w*txn\w*\b")

# event-push: direct pushes into the event queue.
EVENT_PUSH_RE = re.compile(r"\bevents_\.push\s*\(")

# process-spawn: raw process management outside the sweep coordinator.
PROCESS_SPAWN_RE = re.compile(
    r"\b(?:::\s*)?(?:fork|vfork|system|popen|execl|execlp|execle|"
    r"execv|execvp|execvpe|posix_spawnp?)\s*\(")
PROCESS_SPAWN_EXEMPT = ("src/sweep/",)

# stat-dup: literal stat keys registered via StatMap::put("name", ...).
STAT_PUT_RE = re.compile(r"\.put\(\s*\"([^\"]+)\"")

# trace-hook: direct Tracer::record() calls (must use EMC_OBS_POINT).
TRACE_RECORD_RE = re.compile(r"\b\w+\s*(?:->|\.)\s*record\s*\(")
TRACE_RECORD_EXEMPT = ("src/obs/",)

# trace-hook: side effects inside EMC_OBS_POINT argument expressions.
TRACE_HOOK_OPEN_RE = re.compile(r"\bEMC_OBS_POINT\s*\(")
TRACE_SIDE_EFFECT_RE = re.compile(
    r"\+\+|--|[^=!<>+\-*/|&^](?:[+\-*/|&^]|<<|>>)?=[^=]"
)

# fastwarm-timing: functional-warming code must not touch the timing
# model or the stat machinery.  warm-prefixed (capitalized next letter,
# so warmupCheckpointBytes -- which legitimately drives the detailed
# simulator -- is excluded) and fastForward-prefixed function regions
# are scanned, plus fastwarm.* files wholesale.
FASTWARM_FN_RE = re.compile(r"\b(?:warm[A-Z]\w*|fastForward\w*)\s*\(")
FASTWARM_BANNED_RE = re.compile(
    r"\bschedule\s*\(|\bevents_\b|\.sample\s*\(|\btraffic_\b"
    r"|\btracer_\b|\bstreamer_\b|\bEMC_OBS_POINT\b|\bstats_\b")

# ckpt-field: serialization regions (ser/ckptSer bodies and
# ckptSave/ckptLoad calls including their lambda arguments) must not
# mention pointer-to-integer machinery -- a host address written into
# an image does not survive restore.
CKPT_FN_RE = re.compile(r"\b(?:ser|ckptSer|ckptSave|ckptLoad)\s*\(")
CKPT_BANNED_RE = re.compile(
    r"\breinterpret_cast\b|\b(?:std::)?u?intptr_t\b")
# Walker safety valve: a serialization region longer than this many
# lines means unbalanced braces (macro trickery) -- give up silently.
CKPT_MAX_REGION_LINES = 400

LINT_OK_RE = re.compile(r"//\s*lint-ok:\s*([a-z-]+)(\s*\(.+\))?")

COMMENT_BLOCK_RE = re.compile(r"/\*.*?\*/", re.DOTALL)
STRING_RE = re.compile(r'"(?:[^"\\]|\\.)*"')


def iter_sources(roots):
    for root in roots:
        if os.path.isfile(root):
            yield root
            continue
        for dirpath, dirnames, filenames in os.walk(root):
            dirnames[:] = [d for d in dirnames if not d.startswith("build")]
            for f in sorted(filenames):
                if os.path.splitext(f)[1] in SOURCE_EXTS:
                    yield os.path.join(dirpath, f)


def strip_block_comments(text):
    """Blank out /* */ comments, preserving line structure."""
    return COMMENT_BLOCK_RE.sub(
        lambda m: "\n" * m.group(0).count("\n"), text)


def code_part(line, keep_strings=False):
    """The line with any // comment removed and, unless keep_strings,
    string literals blanked (so tokens inside messages don't match)."""
    blanked = STRING_RE.sub('""', line)
    idx = blanked.find("//")
    kept = line if keep_strings else blanked
    return kept if idx < 0 else kept[:idx]


class Linter:
    def __init__(self):
        self.findings = []

    def report(self, path, lineno, rule, msg):
        self.findings.append((path, lineno, rule, msg))

    # -- suppression handling ------------------------------------------

    @staticmethod
    def suppressions(lines):
        """Map line number -> set of suppressed rules (line or line-1)."""
        ok = {}
        for i, line in enumerate(lines, start=1):
            m = LINT_OK_RE.search(line)
            if m:
                ok.setdefault(i, set()).add(m.group(1))
                ok.setdefault(i + 1, set()).add(m.group(1))
        return ok

    def check_suppression_reasons(self, path, lines):
        for i, line in enumerate(lines, start=1):
            m = LINT_OK_RE.search(line)
            if not m:
                continue
            if m.group(1) not in RULES:
                self.report(path, i, "lint-ok",
                            f"unknown rule '{m.group(1)}' in suppression")
            if not m.group(2):
                self.report(path, i, "lint-ok",
                            "suppression lacks a (reason)")

    # -- helpers -------------------------------------------------------

    @staticmethod
    def macro_args(lines, lineno, open_idx, max_lines=12):
        """The argument text of a macro whose '(' sits at (1-based)
        line `lineno`, column `open_idx` of its comment-stripped code.
        Returns None if the parentheses don't balance within
        max_lines (a macro in a comment or a pathological layout)."""
        depth = 0
        out = []
        for off in range(max_lines):
            if lineno - 1 + off >= len(lines):
                break
            code = code_part(lines[lineno - 1 + off])
            start = open_idx if off == 0 else 0
            for ch in code[start:]:
                if ch == "(":
                    depth += 1
                elif ch == ")":
                    depth -= 1
                    if depth == 0:
                        return "".join(out)
                elif depth > 0:
                    out.append(ch)
            out.append(" ")
        return None

    # -- ckpt-field: raw-pointer machinery in serialization code -------

    @staticmethod
    def ckpt_region(lines, lineno, col):
        """Yield (line number, code substring) pairs covering one
        serialization region that starts at (1-based) line `lineno`,
        column `col` of its comment-stripped code.  The region spans
        from the ser/ckptSave/... token until its signature parens and
        any body or lambda braces balance back out (so both member
        definitions and call sites with lambda arguments are covered).
        Gives up after CKPT_MAX_REGION_LINES unbalanced lines."""
        paren = brace = 0
        seen_brace = False
        for off in range(CKPT_MAX_REGION_LINES):
            idx = lineno - 1 + off
            if idx >= len(lines):
                return
            code = code_part(lines[idx])
            start = col if off == 0 else 0
            done_at = None
            for j in range(start, len(code)):
                ch = code[j]
                if ch == "(":
                    paren += 1
                elif ch == ")":
                    paren -= 1
                    if paren <= 0 and seen_brace and brace == 0:
                        done_at = j + 1
                        break
                elif ch == "{":
                    brace += 1
                    seen_brace = True
                elif ch == "}":
                    brace -= 1
                    if seen_brace and brace == 0 and paren <= 0:
                        done_at = j + 1
                        break
                elif ch == ";" and paren <= 0 and brace == 0:
                    done_at = j + 1
                    break
            if done_at is not None:
                yield idx + 1, code[start:done_at]
                return
            yield idx + 1, code[start:]

    def check_ckpt_fields(self, path, lines, ok):
        flagged = set()
        for i, line in enumerate(lines, start=1):
            for m in CKPT_FN_RE.finditer(code_part(line)):
                for lineno, chunk in self.ckpt_region(lines, i, m.start()):
                    bm = CKPT_BANNED_RE.search(chunk)
                    if not bm or lineno in flagged:
                        continue
                    flagged.add(lineno)
                    if "ckpt-field" not in ok.get(lineno, ()):
                        self.report(
                            path, lineno, "ckpt-field",
                            f"'{bm.group(0)}' in serialization code; a "
                            "host address written into a checkpoint "
                            "does not survive restore -- serialize a "
                            "stable id and rebuild the pointer on load")

    # -- fastwarm-timing: timing/stat side effects on warm paths -------

    def fastwarm_hit(self, path, lineno, chunk, ok, flagged):
        bm = FASTWARM_BANNED_RE.search(chunk)
        if not bm or lineno in flagged:
            return
        flagged.add(lineno)
        if "fastwarm-timing" not in ok.get(lineno, ()):
            self.report(
                path, lineno, "fastwarm-timing",
                f"'{bm.group(0).strip()}' on a functional-warming "
                "path; warming must be tag-only (no events, stats, "
                "traffic, or trace hooks -- DESIGN.md #8)")

    def check_fastwarm(self, path, lines, ok):
        flagged = set()
        if os.path.basename(path).startswith("fastwarm"):
            for i, line in enumerate(lines, start=1):
                self.fastwarm_hit(path, i, code_part(line), ok, flagged)
            return
        # Elsewhere, scan warmXxx()/fastForwardXxx() regions only.
        # Declarations and call sites balance out at the ';' after a
        # few lines; definitions span their whole body (the same
        # walker the ckpt-field rule uses).
        for i, line in enumerate(lines, start=1):
            for m in FASTWARM_FN_RE.finditer(code_part(line)):
                for lineno, chunk in self.ckpt_region(lines, i,
                                                      m.start()):
                    self.fastwarm_hit(path, lineno, chunk, ok, flagged)

    # -- pass 1: collect unordered-container member names --------------

    def collect_unordered_members(self, files):
        members = set()
        for path in files:
            with open(path, encoding="utf-8", errors="replace") as f:
                text = strip_block_comments(f.read())
            for m in UNORDERED_DECL_RE.finditer(text):
                members.add(m.group(1))
        return members

    # -- pass 2: per-file rules ----------------------------------------

    def lint_file(self, path, unordered_members):
        with open(path, encoding="utf-8", errors="replace") as f:
            raw = f.read()
        lines = strip_block_comments(raw).splitlines()
        ok = self.suppressions(lines)
        self.check_suppression_reasons(path, lines)

        rel = path.replace("\\", "/")
        rng_exempt = any(rel.endswith(e) for e in RNG_EXEMPT)
        trace_exempt = any(e in rel for e in TRACE_RECORD_EXEMPT)
        spawn_exempt = any(e in rel for e in PROCESS_SPAWN_EXEMPT)

        self.check_ckpt_fields(path, lines, ok)
        self.check_fastwarm(path, lines, ok)

        range_for_re = None
        if unordered_members:
            names = "|".join(re.escape(n) for n in sorted(unordered_members))
            range_for_re = re.compile(
                r"\bfor\s*\([^;)]*:\s*[\w.\->]*\b(?:%s)\b\s*\)" % names)

        stat_keys = {}

        for i, line in enumerate(lines, start=1):
            code = code_part(line)

            def hit(rule, msg):
                if rule not in ok.get(i, ()):
                    self.report(path, i, rule, msg)

            if not rng_exempt and RNG_RE.search(code):
                hit("rng",
                    "nondeterministic source; use common/rng.hh (Rng)")

            if range_for_re and range_for_re.search(code):
                hit("unordered-iter",
                    "range-for over an unordered container; "
                    "hash order is not deterministic")

            if RAW_NEW_RE.search(code):
                hit("raw-new",
                    "raw transaction allocation; use the slab pool")

            if EVENT_PUSH_RE.search(code):
                hit("event-push",
                    "direct event-queue push; go through System::schedule")

            if not spawn_exempt and PROCESS_SPAWN_RE.search(code):
                hit("process-spawn",
                    "raw process spawn; process management lives in "
                    "the sweep coordinator (src/sweep/)")

            if not trace_exempt and TRACE_RECORD_RE.search(code):
                hit("trace-hook",
                    "direct Tracer::record(); hooks go through "
                    "EMC_OBS_POINT (src/obs/obs.hh)")

            for m in TRACE_HOOK_OPEN_RE.finditer(code):
                args = self.macro_args(lines, i, m.end() - 1)
                if args is not None and TRACE_SIDE_EFFECT_RE.search(args):
                    hit("trace-hook",
                        "side effect in EMC_OBS_POINT arguments; a "
                        "hook-stripped build does not evaluate them")

            for m in STAT_PUT_RE.finditer(code_part(line, True)):
                key = m.group(1)
                if key in stat_keys and "stat-dup" not in ok.get(i, ()):
                    self.report(
                        path, i, "stat-dup",
                        f'stat "{key}" already registered at line '
                        f"{stat_keys[key]}")
                stat_keys.setdefault(key, i)


def main(argv):
    roots = argv[1:] or ["src"]
    for r in roots:
        if not os.path.exists(r):
            print(f"lint_sim: no such path: {r}", file=sys.stderr)
            return 2

    files = list(iter_sources(roots))
    linter = Linter()
    members = linter.collect_unordered_members(files)
    for path in files:
        linter.lint_file(path, members)

    for path, lineno, rule, msg in sorted(linter.findings):
        print(f"{path}:{lineno}: [{rule}] {msg}")
    if linter.findings:
        print(f"lint_sim: {len(linter.findings)} finding(s)",
              file=sys.stderr)
        return 1
    print(f"lint_sim: {len(files)} file(s) clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
