/**
 * @file
 * emctracegen — record, inspect and verify v2 uop-trace containers
 * (DESIGN.md §11).
 *
 *   emctracegen record --profile bfs --out bfs.emct --uops 100000
 *   emctracegen info   FILE          header + provenance summary
 *   emctracegen verify FILE          full structural walk; nonzero
 *                                    exit and a byte offset on damage
 *   emctracegen cat    FILE          decoded records as text
 *
 * `record` runs the named benchmark profile's generator with the same
 * seed derivation emcsim uses, so a recorded trace replayed with
 * `emcsim --trace-in` reproduces the live run's statistics exactly.
 */

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "isa/uop.hh"
#include "trace/reader.hh"
#include "trace/record.hh"
#include "workload/profile.hh"

namespace
{

using namespace emc;

void
usage()
{
    std::printf(
        "emctracegen — uop-trace recording and inspection\n"
        "\n"
        "  emctracegen record --profile NAME --out FILE --uops N\n"
        "                     [--seed N] [--core N] [--meta STR]\n"
        "                     [--block-uops N] [--no-compress]\n"
        "        run NAME's generator (emcsim seed derivation: the\n"
        "        trace replays stat-identically via --trace-in)\n"
        "  emctracegen info FILE\n"
        "        print header fields and workload provenance\n"
        "  emctracegen verify FILE\n"
        "        decode every block, check every checksum; prints the\n"
        "        failing byte offset and exits nonzero on damage\n"
        "  emctracegen cat FILE [--limit N]\n"
        "        dump decoded records as text (default limit 32)\n"
        "\n"
        "profiles: the emcsim --list names plus the irregular-workload\n"
        "families (bfs, pagerank, hashjoin, btree, embed)\n");
}

bool
parseU64(const char *s, std::uint64_t &out)
{
    char *end = nullptr;
    out = std::strtoull(s, &end, 0); // base 0: decimal, 0x hex, 0 octal
    return end && *end == '\0';
}

int
cmdRecord(int argc, char **argv)
{
    trace::RecordSpec spec;
    for (int i = 0; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&](const char *what) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s requires an argument\n", what);
                std::exit(2);
            }
            return argv[++i];
        };
        std::uint64_t v;
        if (a == "--profile") {
            spec.profile = need("--profile");
        } else if (a == "--out") {
            spec.path = need("--out");
        } else if (a == "--uops") {
            if (!parseU64(need("--uops"), spec.uops)) return 2;
        } else if (a == "--seed") {
            if (!parseU64(need("--seed"), spec.base_seed)) return 2;
        } else if (a == "--core") {
            if (!parseU64(need("--core"), v)) return 2;
            spec.core = static_cast<unsigned>(v);
        } else if (a == "--meta") {
            spec.meta = need("--meta");
        } else if (a == "--block-uops") {
            if (!parseU64(need("--block-uops"), v)) return 2;
            spec.block_uops = static_cast<std::uint32_t>(v);
        } else if (a == "--no-compress") {
            spec.compress = false;
        } else {
            std::fprintf(stderr, "unknown record flag %s\n", a.c_str());
            return 2;
        }
    }
    if (spec.profile.empty() || spec.path.empty() || spec.uops == 0) {
        std::fprintf(stderr,
                     "record needs --profile, --out and --uops\n");
        return 2;
    }
    const std::uint64_t n = trace::recordProfile(spec);
    std::printf("%s: recorded %" PRIu64 " uops of %s (seed %" PRIu64
                ", core %u)\n",
                spec.path.c_str(), n, spec.profile.c_str(),
                spec.base_seed, spec.core);
    return 0;
}

int
cmdInfo(const std::string &path)
{
    const trace::Info info = trace::probeFile(path);
    std::printf("file        %s (%" PRIu64 " bytes)\n", path.c_str(),
                info.file_bytes);
    std::printf("version     %u\n", info.version);
    std::printf("uops        %" PRIu64 "\n", info.uop_count);
    if (info.version < 2) {
        std::printf("provenance  none (v1 dump; fixed 46-byte"
                    " records)\n");
        return 0;
    }
    std::printf("blocks      %" PRIu64 " (%u uops/block%s)\n",
                info.block_count, info.block_uops,
                (info.flags & trace::kFlagDeflate) ? ", deflate" : "");
    std::printf("finalized   %s\n", info.finalized() ? "yes" : "NO");
    std::printf("workload    %s\n", info.provenance.workload.c_str());
    if (!info.provenance.meta.empty())
        std::printf("meta        %s\n", info.provenance.meta.c_str());
    std::printf("seed        %" PRIu64 "\n", info.provenance.seed);
    std::printf("config_hash %016" PRIx64 "\n",
                info.provenance.config_hash);
    if (info.uop_count > 0) {
        std::printf("bytes/uop   %.2f (v1 would use 46.00)\n",
                    static_cast<double>(info.file_bytes)
                        / static_cast<double>(info.uop_count));
    }
    return 0;
}

int
cmdVerify(const std::string &path)
{
    const std::uint64_t n = trace::verifyFile(path);
    std::printf("%s: OK (%" PRIu64 " uops, every block checksummed"
                " and decoded)\n",
                path.c_str(), n);
    return 0;
}

int
cmdCat(const std::string &path, std::uint64_t limit)
{
    trace::Reader r(path);
    DynUop d;
    std::uint64_t i = 0;
    std::printf("%-10s %-8s %18s %4s %4s %4s %10s %18s %18s %s\n",
                "idx", "op", "pc", "dst", "src1", "src2", "imm",
                "vaddr", "result", "flags");
    while (i < limit && r.next(d)) {
        auto reg = [](std::uint8_t x) {
            return x == kNoReg ? std::string("-")
                               : std::to_string(unsigned(x));
        };
        std::printf("%-10" PRIu64 " %-8s %#18" PRIx64
                    " %4s %4s %4s %10" PRId64 " %#18" PRIx64
                    " %#18" PRIx64 "%s%s\n",
                    i, opcodeName(d.uop.op), d.uop.pc,
                    reg(d.uop.dst).c_str(), reg(d.uop.src1).c_str(),
                    reg(d.uop.src2).c_str(), d.uop.imm, d.vaddr,
                    d.result, d.taken ? " taken" : "",
                    d.mispredicted ? " misp" : "");
        ++i;
    }
    if (i == limit && r.size() > limit) {
        std::printf("... %" PRIu64 " more records (use --limit)\n",
                    r.size() - limit);
    }
    return 0;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        usage();
        return 2;
    }
    const std::string cmd = argv[1];
    try {
        if (cmd == "--help" || cmd == "-h") {
            usage();
            return 0;
        }
        if (cmd == "record")
            return cmdRecord(argc - 2, argv + 2);
        if (cmd == "info" && argc == 3)
            return cmdInfo(argv[2]);
        if (cmd == "verify" && argc == 3)
            return cmdVerify(argv[2]);
        if (cmd == "cat" && (argc == 3 || argc == 5)) {
            std::uint64_t limit = 32;
            if (argc == 5) {
                if (std::strcmp(argv[3], "--limit") != 0
                    || !parseU64(argv[4], limit))
                    return 2;
            }
            return cmdCat(argv[2], limit);
        }
    } catch (const emc::trace::Error &e) {
        std::fprintf(stderr, "trace error: %s\n", e.what());
        return 1;
    }
    usage();
    return 2;
}
