/**
 * @file
 * emcstat — compare two statistics dumps produced by `emcsim --csv`.
 *
 *   emcsim --mix H4 --uops 50000 --csv base.csv
 *   emcsim --mix H4 --uops 50000 --emc --csv emc.csv
 *   emcstat base.csv emc.csv            # all deltas
 *   emcstat base.csv emc.csv lat. emc.  # filtered by prefix
 *
 * Prints absolute and relative deltas, sorted by relative magnitude,
 * so the interesting movements surface first.
 */

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

namespace
{

using Stats = std::map<std::string, double>;

/**
 * Load a "name,value" dump. Returns false after printing a diagnostic
 * naming the file and line: a stats file that is missing, empty,
 * truncated mid-row or non-numeric should fail the comparison loudly
 * rather than surface as a silently empty delta table.
 */
bool
loadCsv(const std::string &path, Stats &out)
{
    std::ifstream in(path);
    if (!in) {
        std::fprintf(stderr, "emcstat: cannot read %s\n", path.c_str());
        return false;
    }
    std::string line;
    unsigned lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        if (line.empty())
            continue;
        const std::size_t comma = line.rfind(',');
        if (comma == std::string::npos || comma == 0) {
            std::fprintf(stderr,
                         "emcstat: %s:%u: expected \"name,value\","
                         " got \"%s\"\n",
                         path.c_str(), lineno, line.c_str());
            return false;
        }
        const std::string name = line.substr(0, comma);
        const std::string value = line.substr(comma + 1);
        std::size_t used = 0;
        double v = 0;
        try {
            v = std::stod(value, &used);
        } catch (...) {
            used = 0;
        }
        if (used != value.size()) {
            std::fprintf(stderr,
                         "emcstat: %s:%u: value of \"%s\" is not a"
                         " number: \"%s\" (truncated dump?)\n",
                         path.c_str(), lineno, name.c_str(),
                         value.c_str());
            return false;
        }
        out[name] = v;
    }
    if (in.bad()) {
        std::fprintf(stderr, "emcstat: read error on %s\n",
                     path.c_str());
        return false;
    }
    if (out.empty()) {
        std::fprintf(stderr, "emcstat: %s contains no stats rows\n",
                     path.c_str());
        return false;
    }
    return true;
}

bool
matchesAny(const std::string &name,
           const std::vector<std::string> &prefixes)
{
    if (prefixes.empty())
        return true;
    for (const auto &p : prefixes) {
        if (name.rfind(p, 0) == 0)
            return true;
    }
    return false;
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 3) {
        std::fprintf(stderr,
                     "usage: emcstat BASE.csv OTHER.csv [prefix...]\n");
        return 2;
    }
    Stats base, other;
    if (!loadCsv(argv[1], base) || !loadCsv(argv[2], other))
        return 1;
    std::vector<std::string> prefixes;
    for (int i = 3; i < argc; ++i)
        prefixes.push_back(argv[i]);

    struct Row
    {
        std::string name;
        double a, b, rel;
    };
    std::vector<Row> rows;
    for (const auto &[name, a] : base) {
        if (!matchesAny(name, prefixes))
            continue;
        auto it = other.find(name);
        if (it == other.end())
            continue;
        const double b = it->second;
        const double rel = a != 0 ? (b - a) / std::fabs(a)
                                  : (b != 0 ? 1.0 : 0.0);
        rows.push_back({name, a, b, rel});
    }
    std::sort(rows.begin(), rows.end(), [](const Row &x, const Row &y) {
        return std::fabs(x.rel) > std::fabs(y.rel);
    });

    std::printf("%-44s %16s %16s %10s\n", "stat", "base", "other",
                "delta");
    for (const Row &r : rows) {
        std::printf("%-44s %16.4f %16.4f %+9.1f%%\n", r.name.c_str(),
                    r.a, r.b, 100 * r.rel);
    }

    // Keys present in only one dump are worth flagging.
    for (const auto &[name, v] : other) {
        if (matchesAny(name, prefixes) && !base.count(name))
            std::printf("%-44s %16s %16.4f      (new)\n", name.c_str(),
                        "-", v);
    }
    return 0;
}
