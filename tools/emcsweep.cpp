/**
 * @file
 * emcsweep — sharded parameter-sweep driver (DESIGN.md §9).
 *
 *   emcsweep --mix H4 --emc --vary emc-contexts=1,2,4 \
 *            --vary sched=batch,frfcfs --procs 4
 *
 * Builds the cross-product of every --vary axis over a base config,
 * runs one job per point through bench::runMany() — which shards
 * across worker processes when --procs (or EMC_BENCH_PROCS) is set —
 * and prints one row per point. Sweeps compose with the crash-resume
 * machinery: --ckpt-dir gives flat per-job autosaves, --store routes
 * them into a content-addressed checkpoint store, and a re-run of the
 * same command line resumes finished points from their sidecars.
 * --stream appends the merged worker interval-stat JSONL to a file.
 *
 * Results are job-indexed and byte-identical at any --procs value.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "workload/profile.hh"

using namespace emc;

namespace
{

void
usage()
{
    std::printf(
        "emcsweep — sharded parameter sweeps over emcsim configs\n"
        "\n"
        "workload (one of):\n"
        "  --workload a,b,...     benchmark per core (repeat last to"
        " fill)\n"
        "  --mix H1..H10          a paper Table 3 mix\n"
        "\n"
        "base config (applied to every point):\n"
        "  --cores N --dual-mc --pf P --emc --uops N --warmup N"
        " --seed N\n"
        "\n"
        "sweep axes (repeatable; cross-product of all axes):\n"
        "  --vary KEY=V1,V2,...   KEY one of: emc, pf, emc-contexts,\n"
        "                         chain-cap, indirection,"
        " emc-dcache-kb,\n"
        "                         emc-tlb, channels, ranks, sched\n"
        "\n"
        "execution:\n"
        "  --procs N              worker processes (sets"
        " EMC_BENCH_PROCS)\n"
        "  --ckpt-dir DIR         crash-resume autosaves"
        " (EMC_CKPT_DIR)\n"
        "  --store DIR            content-addressed autosave store\n"
        "                         (EMC_CKPT_STORE)\n"
        "  --stream FILE          merged interval-stat JSONL"
        " (EMC_SWEEP_STREAM)\n"
        "  --stream-interval N    cycles between interval snapshots\n"
        "  --jsonl FILE           write final per-point stats as"
        " JSONL\n");
}

std::vector<std::string>
splitCommas(const std::string &s)
{
    std::vector<std::string> out;
    std::string cur;
    for (char c : s) {
        if (c == ',') {
            out.push_back(cur);
            cur.clear();
        } else {
            cur.push_back(c);
        }
    }
    out.push_back(cur);
    return out;
}

bool
parseU64(const std::string &s, std::uint64_t &out)
{
    char *end = nullptr;
    out = std::strtoull(s.c_str(), &end, 10);
    return end && *end == '\0' && !s.empty();
}

/** Apply one KEY=VALUE sweep assignment to @p cfg. */
bool
applyKey(SystemConfig &cfg, const std::string &key,
         const std::string &val)
{
    std::uint64_t v = 0;
    if (key == "emc") {
        if (val != "0" && val != "1")
            return false;
        cfg.emc_enabled = val == "1";
        return true;
    }
    if (key == "pf") {
        if (val == "none") cfg.prefetch = PrefetchConfig::kNone;
        else if (val == "ghb") cfg.prefetch = PrefetchConfig::kGhb;
        else if (val == "stream") cfg.prefetch = PrefetchConfig::kStream;
        else if (val == "markov")
            cfg.prefetch = PrefetchConfig::kMarkovStream;
        else if (val == "stride")
            cfg.prefetch = PrefetchConfig::kStride;
        else return false;
        return true;
    }
    if (key == "sched") {
        if (val == "batch") cfg.sched = SchedPolicy::kBatch;
        else if (val == "frfcfs") cfg.sched = SchedPolicy::kFrFcfs;
        else return false;
        return true;
    }
    if (!parseU64(val, v))
        return false;
    if (key == "emc-contexts")
        cfg.emc.contexts = static_cast<unsigned>(v);
    else if (key == "chain-cap")
        cfg.core.chain_max_uops = static_cast<unsigned>(v);
    else if (key == "indirection")
        cfg.core.chain_max_indirection = static_cast<unsigned>(v);
    else if (key == "emc-dcache-kb")
        cfg.emc.dcache_bytes = static_cast<unsigned>(v) * 1024;
    else if (key == "emc-tlb")
        cfg.emc.tlb_entries = static_cast<unsigned>(v);
    else if (key == "channels")
        cfg.dram.channels = static_cast<unsigned>(v);
    else if (key == "ranks")
        cfg.dram.ranks_per_channel = static_cast<unsigned>(v);
    else
        return false;
    return true;
}

struct Axis
{
    std::string key;
    std::vector<std::string> values;
};

/** "a.b=1.5" with enough digits to reparse bit-exactly. */
void
writeJsonStats(std::FILE *out, const StatDump &d)
{
    std::fputc('{', out);
    bool first = true;
    for (const auto &[name, value] : d.all()) {
        std::fprintf(out, "%s\"%s\":%.17g", first ? "" : ",",
                     name.c_str(), value);
        first = false;
    }
    std::fputc('}', out);
}

} // namespace

int
main(int argc, char **argv)
{
    SystemConfig base;
    base.target_uops = 20000;
    std::uint64_t warmup = 0;
    bool have_warmup = false;
    unsigned cores = 4;
    bool dual_mc = false;
    std::vector<std::string> workload;
    std::vector<Axis> axes;
    unsigned procs = 0;
    std::string jsonl_path;

    for (int i = 1; i < argc; ++i) {
        const std::string a = argv[i];
        auto need = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::fprintf(stderr, "%s needs a value\n", flag);
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--help" || a == "-h") {
            usage();
            return 0;
        } else if (a == "--workload") {
            workload = splitCommas(need("--workload"));
        } else if (a == "--mix") {
            const std::string m = need("--mix");
            bool found = false;
            for (std::size_t h = 0; h < quadWorkloads().size(); ++h) {
                if (quadWorkloadName(h) == m) {
                    workload = quadWorkloads()[h];
                    found = true;
                }
            }
            if (!found) {
                std::fprintf(stderr, "unknown mix %s\n", m.c_str());
                return 2;
            }
        } else if (a == "--cores") {
            std::uint64_t v;
            if (!parseU64(need("--cores"), v))
                return 2;
            cores = static_cast<unsigned>(v);
        } else if (a == "--dual-mc") {
            dual_mc = true;
        } else if (a == "--emc") {
            base.emc_enabled = true;
        } else if (a == "--pf") {
            if (!applyKey(base, "pf", need("--pf")))
                return 2;
        } else if (a == "--uops") {
            if (!parseU64(need("--uops"), base.target_uops))
                return 2;
        } else if (a == "--warmup") {
            if (!parseU64(need("--warmup"), warmup))
                return 2;
            have_warmup = true;
        } else if (a == "--seed") {
            if (!parseU64(need("--seed"), base.seed))
                return 2;
        } else if (a == "--vary") {
            const std::string spec = need("--vary");
            const std::size_t eq = spec.find('=');
            if (eq == std::string::npos || eq == 0
                || eq + 1 >= spec.size()) {
                std::fprintf(stderr, "--vary wants KEY=V1,V2,...\n");
                return 2;
            }
            axes.push_back({spec.substr(0, eq),
                            splitCommas(spec.substr(eq + 1))});
        } else if (a == "--procs") {
            std::uint64_t v;
            if (!parseU64(need("--procs"), v))
                return 2;
            procs = static_cast<unsigned>(v);
        } else if (a == "--ckpt-dir") {
            setenv("EMC_CKPT_DIR", need("--ckpt-dir"), 1);
        } else if (a == "--store") {
            setenv("EMC_CKPT_STORE", need("--store"), 1);
        } else if (a == "--stream") {
            setenv("EMC_SWEEP_STREAM", need("--stream"), 1);
        } else if (a == "--stream-interval") {
            setenv("EMC_SWEEP_STREAM_INTERVAL",
                   need("--stream-interval"), 1);
        } else if (a == "--jsonl") {
            jsonl_path = need("--jsonl");
        } else {
            std::fprintf(stderr, "unknown flag %s\n", a.c_str());
            usage();
            return 2;
        }
    }

    if (workload.empty()) {
        std::fprintf(stderr, "pick a workload (--workload or --mix)\n");
        return 2;
    }
    if (procs > 0)
        setenv("EMC_BENCH_PROCS", std::to_string(procs).c_str(), 1);

    if (cores == 8)
        base.scaleToEightCores(dual_mc);
    else
        base.num_cores = cores;
    base.warmup_uops = have_warmup ? warmup : base.target_uops / 2;
    while (workload.size() < base.num_cores)
        workload.push_back(workload.back());

    // Cross-product of the axes, first axis slowest — point order (and
    // therefore job indices) is part of the resume contract, so keep
    // it a plain odometer.
    std::vector<bench::RunJob> jobs;
    std::vector<std::vector<std::string>> assignments;
    std::vector<std::size_t> idx(axes.size(), 0);
    while (true) {
        SystemConfig cfg = base;
        std::vector<std::string> assign;
        for (std::size_t ax = 0; ax < axes.size(); ++ax) {
            const std::string &key = axes[ax].key;
            const std::string &val = axes[ax].values[idx[ax]];
            if (!applyKey(cfg, key, val)) {
                std::fprintf(stderr, "bad sweep assignment %s=%s\n",
                             key.c_str(), val.c_str());
                return 2;
            }
            assign.push_back(key + "=" + val);
        }
        jobs.push_back({cfg, workload});
        assignments.push_back(std::move(assign));
        if (axes.empty())
            break;
        std::size_t ax = axes.size() - 1;
        bool wrapped = false;
        while (++idx[ax] >= axes[ax].values.size()) {
            idx[ax] = 0;
            if (ax == 0) {
                wrapped = true;
                break;
            }
            --ax;
        }
        if (wrapped)
            break;
    }

    std::printf("emcsweep: %zu points, %u procs\n", jobs.size(),
                bench::benchProcs());

    std::vector<StatDump> results;
    try {
        results = bench::runMany(jobs);
    } catch (const std::exception &e) {
        std::fprintf(stderr, "emcsweep: %s\n", e.what());
        return 1;
    }

    std::FILE *jsonl =
        jsonl_path.empty() ? nullptr
                           : std::fopen(jsonl_path.c_str(), "w");
    if (!jsonl_path.empty() && !jsonl) {
        std::fprintf(stderr, "emcsweep: cannot write %s\n",
                     jsonl_path.c_str());
        return 1;
    }

    for (std::size_t j = 0; j < jobs.size(); ++j) {
        std::string label;
        for (const std::string &kv : assignments[j])
            label += (label.empty() ? "" : " ") + kv;
        if (label.empty())
            label = "(base)";
        const double ipc = results[j].get("system.ipc_sum");
        const double rel =
            bench::relPerf(results[j], results[0],
                           jobs[j].cfg.num_cores);
        std::printf("  point %2zu  %-40s ipc_sum=%7.3f rel=%6.3f\n",
                    j, label.c_str(), ipc, rel);
        if (jsonl) {
            std::fprintf(jsonl, "{\"job\":%zu,\"params\":{", j);
            for (std::size_t ax = 0; ax < axes.size(); ++ax) {
                const std::size_t eq = assignments[j][ax].find('=');
                std::fprintf(
                    jsonl, "%s\"%s\":\"%s\"", ax ? "," : "",
                    assignments[j][ax].substr(0, eq).c_str(),
                    assignments[j][ax].substr(eq + 1).c_str());
            }
            std::fputs("},\"stats\":", jsonl);
            writeJsonStats(jsonl, results[j]);
            std::fputs("}\n", jsonl);
        }
    }
    if (jsonl)
        std::fclose(jsonl);
    return 0;
}
