/**
 * @file
 * Figure 14: eight-core performance on H1-H10 (each mix duplicated to
 * eight cores), with a single memory controller and with two memory
 * controllers — each without and with the EMC.
 *
 * Paper shape: EMC gains are slightly higher than quad-core (more
 * contention); the dual-MC baseline is ~0.8% below single-MC; the
 * dual-MC EMC gains slightly less than single-MC (inter-EMC
 * communication) but shows no significant degradation.
 */

#include <cmath>
#include <cstdio>

#include "bench/bench_util.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace emc;
    using namespace emc::bench;

    banner("Figure 14", "eight-core, 1 MC vs 2 MC",
           "EMC +17%/+13% (1MC, noPF/GHB); 2MC baseline -0.8%; "
           "2MC EMC gains slightly less");

    std::printf("%-5s %9s %9s %9s %9s\n", "mix", "1MC", "1MC+emc",
                "2MC", "2MC+emc");

    // A subset of the mixes keeps this bench tractable on one host;
    // lengthen with EMC_SIM_UOPS for the full sweep. The 16 runs are
    // independent, so fan them across threads.
    const std::size_t mixes[] = {2u, 3u, 4u, 7u};  // H3, H4, H5, H8
    std::vector<RunJob> jobs;
    for (std::size_t h : mixes) {
        const auto mix = eightCoreMix(h);
        jobs.push_back(
            {eightConfig(PrefetchConfig::kNone, false, false), mix});
        jobs.push_back(
            {eightConfig(PrefetchConfig::kNone, true, false), mix});
        jobs.push_back(
            {eightConfig(PrefetchConfig::kNone, false, true), mix});
        jobs.push_back(
            {eightConfig(PrefetchConfig::kNone, true, true), mix});
    }
    const std::vector<StatDump> res = runMany(jobs);

    double g1 = 0, g2 = 0, base2 = 0;
    unsigned n = 0;
    for (std::size_t m = 0; m < std::size(mixes); ++m) {
        const StatDump &s1 = res[4 * m];
        const StatDump &s1e = res[4 * m + 1];
        const StatDump &s2 = res[4 * m + 2];
        const StatDump &s2e = res[4 * m + 3];
        const double p1e = relPerf(s1e, s1, 8);
        const double p2 = relPerf(s2, s1, 8);
        const double p2e = relPerf(s2e, s1, 8);
        std::printf("%-5s %9.3f %9.3f %9.3f %9.3f\n",
                    quadWorkloadName(mixes[m]).c_str(), 1.0, p1e, p2,
                    p2e);
        g1 += std::log(p1e);
        g2 += std::log(p2e / p2);
        base2 += std::log(p2);
        ++n;
    }
    std::printf("\n1MC EMC gain: %+.1f%% (paper: +17%% over noPF)\n",
                100 * (std::exp(g1 / n) - 1.0));
    std::printf("2MC baseline vs 1MC: %+.1f%% (paper: -0.8%%)\n",
                100 * (std::exp(base2 / n) - 1.0));
    std::printf("2MC EMC gain: %+.1f%% (paper: +16%%, slightly "
                "below 1MC)\n",
                100 * (std::exp(g2 / n) - 1.0));
    return 0;
}
