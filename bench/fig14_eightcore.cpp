/**
 * @file
 * Figure 14: eight-core performance on H1-H10 (each mix duplicated to
 * eight cores), with a single memory controller and with two memory
 * controllers — each without and with the EMC.
 *
 * Paper shape: EMC gains are slightly higher than quad-core (more
 * contention); the dual-MC baseline is ~0.8% below single-MC; the
 * dual-MC EMC gains slightly less than single-MC (inter-EMC
 * communication) but shows no significant degradation.
 */

#include <cmath>
#include <cstdio>

#include "bench/bench_util.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace emc;
    using namespace emc::bench;

    banner("Figure 14", "eight-core, 1 MC vs 2 MC",
           "EMC +17%/+13% (1MC, noPF/GHB); 2MC baseline -0.8%; "
           "2MC EMC gains slightly less");

    std::printf("%-5s %9s %9s %9s %9s\n", "mix", "1MC", "1MC+emc",
                "2MC", "2MC+emc");

    double g1 = 0, g2 = 0, base2 = 0;
    unsigned n = 0;
    // A subset of the mixes keeps this bench tractable on one host;
    // lengthen with EMC_SIM_UOPS for the full sweep.
    for (std::size_t h : {2u, 3u, 4u, 7u}) {  // H3, H4, H5, H8
        const auto mix = eightCoreMix(h);
        const StatDump s1 = run(eightConfig(PrefetchConfig::kNone,
                                            false, false), mix);
        const StatDump s1e = run(eightConfig(PrefetchConfig::kNone,
                                             true, false), mix);
        const StatDump s2 = run(eightConfig(PrefetchConfig::kNone,
                                            false, true), mix);
        const StatDump s2e = run(eightConfig(PrefetchConfig::kNone,
                                             true, true), mix);
        const double p1e = relPerf(s1e, s1, 8);
        const double p2 = relPerf(s2, s1, 8);
        const double p2e = relPerf(s2e, s1, 8);
        std::printf("%-5s %9.3f %9.3f %9.3f %9.3f\n",
                    quadWorkloadName(h).c_str(), 1.0, p1e, p2, p2e);
        g1 += std::log(p1e);
        g2 += std::log(p2e / p2);
        base2 += std::log(p2);
        ++n;
    }
    std::printf("\n1MC EMC gain: %+.1f%% (paper: +17%% over noPF)\n",
                100 * (std::exp(g1 / n) - 1.0));
    std::printf("2MC baseline vs 1MC: %+.1f%% (paper: -0.8%%)\n",
                100 * (std::exp(base2 / n) - 1.0));
    std::printf("2MC EMC gain: %+.1f%% (paper: +16%%, slightly "
                "below 1MC)\n",
                100 * (std::exp(g2 / n) - 1.0));
    return 0;
}
