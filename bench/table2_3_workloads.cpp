/**
 * @file
 * Tables 2 and 3: benchmark classification by measured MPKI (high
 * intensity: MPKI >= 10) and the quad-core workload mixes.
 *
 * This bench runs each benchmark (four copies) and verifies that the
 * measured classification matches the paper's Table 2 split.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace emc;
    using namespace emc::bench;

    banner("Tables 2-3", "benchmark classification + workload mixes",
           "high intensity: MPKI >= 10 (8 benchmarks); 21 low");

    std::printf("%-12s %8s %10s %10s %8s\n", "benchmark", "mpki",
                "dep-frac", "ipc", "class-ok");
    unsigned correct = 0, total = 0;
    for (const auto &p : allProfiles()) {
        SystemConfig cfg = quadConfig();
        // Low-intensity kernels need warmup to amortize cold misses.
        cfg.warmup_uops = cfg.target_uops;
        const StatDump d = run(cfg, homo(p.name));
        double mpki = 0, dep = 0, ipc = 0;
        for (int i = 0; i < 4; ++i) {
            const std::string k = "core" + std::to_string(i) + ".";
            mpki += d.get(k + "mpki") / 4;
            dep += d.get(k + "dep_miss_frac") / 4;
            ipc += d.get(k + "ipc") / 4;
        }
        const bool measured_high = mpki >= 10.0;
        const bool ok = measured_high == p.high_intensity;
        std::printf("%-12s %8.1f %9.1f%% %10.3f %8s\n", p.name.c_str(),
                    mpki, 100 * dep, ipc, ok ? "yes" : "NO");
        correct += ok ? 1 : 0;
        ++total;
    }
    std::printf("\nclassification agreement: %u / %u\n", correct, total);

    std::printf("\nTable 3 quad-core mixes:\n");
    for (std::size_t h = 0; h < quadWorkloads().size(); ++h) {
        std::printf("  %-4s", quadWorkloadName(h).c_str());
        for (const auto &b : quadWorkloads()[h])
            std::printf(" %s", b.c_str());
        std::printf("\n");
    }
    return 0;
}
