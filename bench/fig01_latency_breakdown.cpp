/**
 * @file
 * Figure 1: breakdown of total memory access latency into the DRAM
 * access component and all other on-chip delay, per SPEC-like
 * benchmark running as four copies on the quad-core system.
 *
 * Paper shape: for memory-intensive applications (MPKI >= 10, right of
 * leslie3d) the DRAM access is less than half of the total latency —
 * most of the effective latency is on-chip delay.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace emc;
    using namespace emc::bench;

    banner("Figure 1", "memory latency: DRAM vs on-chip delay",
           "on-chip delay dominates for high-MPKI applications");

    // A representative sweep across the intensity spectrum (running
    // all 29 benchmarks is possible but slow; the shape needs the
    // class boundary visible).
    const std::vector<std::string> apps = {
        "gcc", "astar", "leslie3d",                        // low MPKI
        "sphinx3", "omnetpp", "soplex", "milc",
        "bwaves", "libquantum", "lbm", "mcf",              // high MPKI
    };

    std::printf("%-12s %8s %10s %10s %10s %8s\n", "benchmark", "mpki",
                "total(c)", "dram(c)", "onchip(c)", "onchip%");
    std::vector<std::pair<std::string, std::vector<double>>> chart;
    for (const auto &app : apps) {
        SystemConfig cfg = quadConfig();
        // Cache-resident benchmarks need a full warmup pass for their
        // steady-state MPKI to emerge.
        cfg.warmup_uops = cfg.target_uops;
        const StatDump d = run(cfg, homo(app));
        const double total = d.get("lat.core_total");
        const double dram = d.get("lat.core_dram");
        const double onchip = d.get("lat.core_onchip");
        double mpki = 0;
        for (int i = 0; i < 4; ++i)
            mpki += d.get("core" + std::to_string(i) + ".mpki") / 4;
        std::printf("%-12s %8.1f %10.1f %10.1f %10.1f %7.1f%%\n",
                    app.c_str(), mpki, total, dram, onchip,
                    total > 0 ? 100.0 * onchip / (dram + onchip) : 0.0);
        chart.push_back({app, {dram, onchip}});
    }
    note("");
    groupedChart({"dram cycles", "on-chip cycles"}, chart);
    note("");
    note("expected shape: the on-chip share grows with memory"
         " intensity; for the high-MPKI group it is a large fraction"
         " of total latency (paper: more than half).");
    return 0;
}
