/**
 * @file
 * Table 1: echo the simulated system configuration so a reader can
 * check it against the paper's table line by line.
 */

#include <cstdio>

#include "bench/bench_util.hh"

int
main()
{
    using namespace emc;
    using namespace emc::bench;

    banner("Table 1", "system configuration", "");

    SystemConfig q = quadConfig();
    std::printf("Core            %u-wide issue, %u-entry ROB, %u-entry "
                "RS, 3.2 GHz\n",
                q.core.issue_width, q.core.rob_size, q.core.rs_size);
    std::printf("L1 D-cache      %u KB, %u-way, %llu-cycle, "
                "write-through\n",
                q.core.l1d_bytes / 1024, q.core.l1d_ways,
                static_cast<unsigned long long>(q.core.l1d_latency));
    std::printf("LLC             distributed shared, %zu KB slice/core "
                "x %u cores, %u-way, %llu-cycle, write-back, "
                "inclusive\n",
                q.llc_slice_bytes / 1024, q.num_cores, q.llc_ways,
                static_cast<unsigned long long>(q.llc_latency));
    std::printf("Interconnect    2 bidirectional rings (8 B control / "
                "64 B data), 1-cycle links, %u stops\n",
                q.num_cores + q.num_mcs);
    std::printf("EMC compute     %u contexts, %u-wide, %u-entry RS, "
                "%u B dcache (%u-way, %llu-cycle), %u-entry TLB/core, "
                "%u-uop buffer, %u EPRs\n",
                q.emc.contexts, q.emc.issue_width, q.emc.rs_entries,
                q.emc.dcache_bytes, q.emc.dcache_ways,
                static_cast<unsigned long long>(q.emc.dcache_latency),
                q.emc.tlb_entries, kChainMaxUops, kEmcPhysRegs);
    std::printf("EMC ISA         integer add/sub/mov + logical "
                "and/or/xor/not/shift/sext + load/store (+branch "
                "direction checks)\n");
    std::printf("Mem controller  batch scheduling (PAR-BS), %zu-entry "
                "queue\n",
                q.mc_queue_entries);
    std::printf("DRAM            DDR3-1600, %u channels x %u rank x "
                "%u banks, %u B rows, tCL=%llu tRCD=%llu tRP=%llu "
                "core cycles\n",
                q.dram.channels, q.dram.ranks_per_channel,
                q.dram.banks_per_rank, q.dram.row_bytes,
                static_cast<unsigned long long>(q.timing.tCL),
                static_cast<unsigned long long>(q.timing.tRCD),
                static_cast<unsigned long long>(q.timing.tRP));
    std::printf("Prefetchers     stream (32 streams, distance 32), "
                "GHB G/DC (1k entries), Markov (1 MB, 4 succ) + "
                "stream; all with FDP degree 1-32, fill into LLC\n");

    SystemConfig e8 = eightConfig(PrefetchConfig::kNone, true, true);
    std::printf("8-core scaling  %u cores, %u MCs, %u channels, "
                "%zu-entry queue, %u EMC contexts/MC\n",
                e8.num_cores, e8.num_mcs, e8.dram.channels,
                e8.mc_queue_entries, e8.emc.contexts);
    return 0;
}
