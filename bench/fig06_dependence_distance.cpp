/**
 * @file
 * Figure 6: average number of operations in the dependence chain
 * between a source miss and its dependent miss, per benchmark.
 *
 * Paper shape: the distance is small (a handful of simple integer
 * uops), which is why a 16-uop chain buffer suffices.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace emc;
    using namespace emc::bench;

    banner("Figure 6", "ops between source and dependent miss",
           "a small number of simple integer ops (chain of <= 16 "
           "uops suffices)");

    std::printf("%-12s %12s %14s\n", "benchmark", "avg-ops",
                "dep-miss-frac");
    double worst = 0;
    for (const auto &app : highIntensityNames()) {
        const StatDump d = run(quadConfig(), homo(app));
        double dist = 0, frac = 0;
        unsigned n = 0;
        for (int i = 0; i < 4; ++i) {
            const std::string p = "core" + std::to_string(i) + ".";
            if (d.get(p + "dependent_llc_misses") > 0) {
                dist += d.get(p + "dep_distance");
                frac += d.get(p + "dep_miss_frac");
                ++n;
            }
        }
        if (n) {
            dist /= n;
            frac /= n;
        }
        worst = std::max(worst, dist);
        std::printf("%-12s %12.2f %13.1f%%\n", app.c_str(), dist,
                    100 * frac);
    }
    std::printf("\nmax average distance: %.2f uops "
                "(chain capacity: %u uops)\n",
                worst, kChainMaxUops);
    note("expected shape: distances well under the 16-uop chain"
         " capacity for every benchmark that has dependent misses.");
    return 0;
}
