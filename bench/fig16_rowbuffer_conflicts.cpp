/**
 * @file
 * Figure 16: change in DRAM row-buffer conflict rate with the EMC
 * relative to the no-prefetching baseline, per workload.
 *
 * Paper shape: the EMC reduces the conflict rate (requests issued
 * earlier reach open rows / batch together); the reduction is small
 * in H1 (<1%) and large in H4 (~19%), correlating with the gain.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace emc;
    using namespace emc::bench;

    banner("Figure 16", "row-buffer conflict rate change with EMC",
           "reduced conflict rate; H1 <1%, H4 ~19% reduction");

    std::printf("%-5s %12s %12s %12s\n", "mix", "base-rate",
                "emc-rate", "change");
    for (std::size_t h = 0; h < quadWorkloads().size(); ++h) {
        const auto &mix = quadWorkloads()[h];
        const StatDump b = run(quadConfig(), mix);
        const StatDump e = run(quadConfig(PrefetchConfig::kNone, true),
                               mix);
        const double rb = b.get("dram.row_conflict_rate");
        const double re = e.get("dram.row_conflict_rate");
        std::printf("%-5s %11.1f%% %11.1f%% %+11.1f%%\n",
                    quadWorkloadName(h).c_str(), 100 * rb, 100 * re,
                    100 * (re - rb));
    }
    note("");
    note("expected shape: conflict rate stays equal or drops with the"
         " EMC; the largest drops align with the largest Figure 12"
         " gains.");
    return 0;
}
