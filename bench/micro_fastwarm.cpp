/**
 * @file
 * Fast-forward warming + sampled-simulation microbench
 * (BENCH_fastwarm.json).
 *
 * Part 1 measures warming throughput: the same N uops per core are
 * consumed once by the detailed simulator (full OoO/ring/DRAM timing)
 * and once by the tag-only fastwarm path (System::fastForward), and
 * both are reported as warmed uops/sec.  The fastwarm path must clear
 * 10x detailed throughput in full mode — that is the whole point of
 * functional warming.
 *
 * Part 2 measures sampled-run accuracy: one full detailed fig13-style
 * run (4x mcf, EMC+GHB) against a SMARTS-style sampled run of the same
 * workload.  The sampled 95% confidence interval must cover the
 * full-run IPC (up to a 5% window-edge slack), and the sampled run
 * should finish in a fraction of the detailed wall-clock.
 *
 * Usage: micro_fastwarm [--smoke] [output.json]
 *   --smoke   tiny uop counts and relaxed thresholds (CI sanity run)
 *   default output path: BENCH_fastwarm.json
 */

#include <chrono>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "bench/bench_util.hh"
#include "sim/fastwarm.hh"
#include "sim/system.hh"

namespace
{

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

emc::SystemConfig
fig13Config()
{
    emc::SystemConfig cfg;
    cfg.prefetch = emc::PrefetchConfig::kGhb;
    cfg.emc_enabled = true;
    return cfg;
}

/** Detailed-simulate @p uops per core; @return warmed uops/sec. */
double
detailedThroughput(std::uint64_t uops, double *wall_out)
{
    emc::SystemConfig cfg = fig13Config();
    cfg.target_uops = uops;
    cfg.warmup_uops = 0;
    emc::System sys(cfg, emc::bench::homo("mcf"));
    const auto t0 = std::chrono::steady_clock::now();
    sys.run();
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = seconds(t0, t1);
    if (wall_out)
        *wall_out = wall;
    return static_cast<double>(uops * cfg.num_cores) / wall;
}

/** Fast-forward @p uops per core tag-only; @return warmed uops/sec. */
double
fastwarmThroughput(std::uint64_t uops, double *wall_out)
{
    emc::SystemConfig cfg = fig13Config();
    cfg.target_uops = uops;
    cfg.warmup_uops = 0;
    emc::System sys(cfg, emc::bench::homo("mcf"));
    const auto t0 = std::chrono::steady_clock::now();
    const std::uint64_t consumed = sys.fastForward(uops);
    const auto t1 = std::chrono::steady_clock::now();
    const double wall = seconds(t0, t1);
    if (wall_out)
        *wall_out = wall;
    return static_cast<double>(consumed * cfg.num_cores) / wall;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_fastwarm.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else
            out_path = argv[i];
    }

    const std::uint64_t warm_uops = smoke ? 2'000 : 20'000;
    const std::uint64_t run_uops = smoke ? 6'000 : 20'000;
    const std::uint64_t warmup_uops = smoke ? 1'000 : 2'000;
    const std::uint64_t period = smoke ? 1'500 : 2'000;
    const std::uint64_t detail = smoke ? 400 : 500;

    std::printf("warming throughput (4x mcf, EMC+GHB, %llu uops/core)\n",
                static_cast<unsigned long long>(warm_uops));
    double wall_detail = 0, wall_fast = 0;
    const double tp_detail = detailedThroughput(warm_uops, &wall_detail);
    const double tp_fast = fastwarmThroughput(warm_uops, &wall_fast);
    const double warm_speedup = tp_fast / tp_detail;
    std::printf("  detailed:  %12.0f uops/sec (%.2fs)\n", tp_detail,
                wall_detail);
    std::printf("  fastwarm:  %12.0f uops/sec (%.3fs)\n", tp_fast,
                wall_fast);
    std::printf("  speedup:   %12.2fx\n", warm_speedup);

    std::printf("sampled accuracy (4x mcf, %llu uops/core, period %llu"
                " detail %llu)\n",
                static_cast<unsigned long long>(run_uops),
                static_cast<unsigned long long>(period),
                static_cast<unsigned long long>(detail));
    emc::SystemConfig cfg = fig13Config();
    cfg.target_uops = run_uops;
    cfg.warmup_uops = warmup_uops;

    emc::System full(cfg, emc::bench::homo("mcf"));
    const auto f0 = std::chrono::steady_clock::now();
    full.run();
    const auto f1 = std::chrono::steady_clock::now();
    const double wall_full = seconds(f0, f1);
    const double full_ipc = full.dump().get("system.ipc_sum");

    emc::SampleParams p;
    p.period = period;
    p.detail = detail;
    emc::System sampled(cfg, emc::bench::homo("mcf"));
    const auto s0 = std::chrono::steady_clock::now();
    const emc::SampledStats s = sampled.runSampled(p);
    const auto s1 = std::chrono::steady_clock::now();
    const double wall_sampled = seconds(s0, s1);

    const double err = std::abs(s.ipc_mean - full_ipc);
    const bool covered = err <= s.ipc_ci95 + 0.05 * full_ipc;
    std::printf("  full:      ipc=%.4f (%.2fs)\n", full_ipc, wall_full);
    std::printf("  sampled:   ipc=%.4f +-%.4f over %llu windows"
                " (%.2fs)\n",
                s.ipc_mean, s.ipc_ci95,
                static_cast<unsigned long long>(s.windows),
                wall_sampled);
    std::printf("  ci covers full-run ipc: %s\n",
                covered ? "yes" : "NO");

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f) {
        std::perror("fopen");
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(f, "  \"host_hw_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"warming\": {\n");
    std::fprintf(f, "    \"uops_per_core\": %llu,\n",
                 static_cast<unsigned long long>(warm_uops));
    std::fprintf(f, "    \"detailed_uops_per_sec\": %.0f,\n", tp_detail);
    std::fprintf(f, "    \"fastwarm_uops_per_sec\": %.0f,\n", tp_fast);
    std::fprintf(f, "    \"speedup\": %.2f\n", warm_speedup);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"sampled\": {\n");
    std::fprintf(f, "    \"uops_per_core\": %llu,\n",
                 static_cast<unsigned long long>(run_uops));
    std::fprintf(f, "    \"period\": %llu,\n",
                 static_cast<unsigned long long>(period));
    std::fprintf(f, "    \"detail\": %llu,\n",
                 static_cast<unsigned long long>(detail));
    std::fprintf(f, "    \"windows\": %llu,\n",
                 static_cast<unsigned long long>(s.windows));
    std::fprintf(f, "    \"full_ipc\": %.4f,\n", full_ipc);
    std::fprintf(f, "    \"sampled_ipc\": %.4f,\n", s.ipc_mean);
    std::fprintf(f, "    \"sampled_ipc_ci95\": %.4f,\n", s.ipc_ci95);
    std::fprintf(f, "    \"ci_covers_full\": %s,\n",
                 covered ? "true" : "false");
    std::fprintf(f, "    \"full_wall_sec\": %.2f,\n", wall_full);
    std::fprintf(f, "    \"sampled_wall_sec\": %.2f\n", wall_sampled);
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());

    // Smoke mode only sanity-checks that both paths run; full mode
    // enforces the acceptance thresholds.
    if (!smoke && warm_speedup < 10.0) {
        std::printf("ERROR: fastwarm speedup %.2fx below 10x\n",
                    warm_speedup);
        return 1;
    }
    if (!covered) {
        std::printf("ERROR: sampled CI missed the full-run IPC\n");
        return 1;
    }
    return 0;
}
