/**
 * @file
 * Figure 21: of the cache misses the EMC generates in the
 * no-prefetching system, how many would a prefetcher have covered?
 * Measured by recording the EMC's miss lines in a no-PF run, then
 * checking which of those lines each prefetcher fills in a matched
 * run (deterministic seeds keep the address streams identical).
 *
 * Paper shape: GHB/stream/Markov+stream cover 30%/21%/48% — for the
 * majority of EMC accesses the EMC supplements the prefetcher by
 * serving addresses the prefetcher cannot predict.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace emc;
    using namespace emc::bench;

    banner("Figure 21", "EMC misses coverable by prefetchers",
           "GHB 30%, stream 21%, Markov+stream 48% of EMC misses");

    const PrefetchConfig pfs[] = {PrefetchConfig::kGhb,
                                  PrefetchConfig::kStream,
                                  PrefetchConfig::kMarkovStream};

    std::printf("%-5s %12s", "mix", "emc-lines");
    for (PrefetchConfig pf : pfs)
        std::printf(" %14s", prefetchConfigName(pf));
    std::printf("\n");

    double cov_sum[3] = {0, 0, 0};
    unsigned rows = 0;
    for (std::size_t h : {0u, 3u, 4u, 7u}) {  // H1, H4, H5, H8
        // Pass 1: EMC without prefetching; record its miss lines.
        SystemConfig ecfg = quadConfig(PrefetchConfig::kNone, true);
        ecfg.record_emc_miss_lines = true;
        System esys(ecfg, quadWorkloads()[h]);
        esys.run();
        const auto &emc_lines = esys.emcMissLines();
        std::printf("%-5s %12zu", quadWorkloadName(h).c_str(),
                    emc_lines.size());

        // Pass 2: each prefetcher (no EMC); intersect fills.
        for (unsigned p = 0; p < 3; ++p) {
            SystemConfig pcfg = quadConfig(pfs[p], false);
            pcfg.record_prefetch_lines = true;
            System psys(pcfg, quadWorkloads()[h]);
            psys.run();
            std::size_t covered = 0;
            for (Addr line : emc_lines)
                covered += psys.prefetchLines().count(line);
            const double cov =
                emc_lines.empty()
                    ? 0.0
                    : static_cast<double>(covered) / emc_lines.size();
            std::printf(" %13.1f%%", 100 * cov);
            cov_sum[p] += cov;
        }
        std::printf("\n");
        ++rows;
    }
    std::printf("\naverage coverage (paper: 30%% / 21%% / 48%%):\n");
    for (unsigned p = 0; p < 3; ++p) {
        std::printf("  %-14s %5.1f%%\n", prefetchConfigName(pfs[p]),
                    100 * cov_sum[p] / rows);
    }
    note("expected shape: a minority of EMC misses are prefetchable;"
         " Markov+stream covers the most (it also costs the most"
         " bandwidth).");
    return 0;
}
