/**
 * @file
 * Figure 2: the percentage of LLC misses that depend on a prior LLC
 * miss, and the performance gain if those dependent misses had been
 * LLC hits.
 *
 * Paper shape: mcf has the highest dependent fraction and gains ~95%
 * from the idealization; streaming applications (lbm, libquantum,
 * bwaves, milc) have near-zero dependent misses and gain nothing.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace emc;
    using namespace emc::bench;

    banner("Figure 2", "dependent-miss fraction + ideal-hit speedup",
           "mcf: highest fraction, +95% if dependent misses were hits");

    std::printf("%-12s %10s %12s\n", "benchmark", "dep-frac",
                "ideal-gain");
    std::vector<std::pair<std::string, double>> chart;
    for (const auto &app : highIntensityNames()) {
        SystemConfig base = quadConfig();
        const StatDump b = run(base, homo(app));

        SystemConfig ideal = base;
        ideal.ideal_dependent_hits = true;
        const StatDump i = run(ideal, homo(app));

        const double frac = b.get("llc.dep_miss_frac");
        const double gain = relPerf(i, b, 4) - 1.0;
        std::printf("%-12s %9.1f%% %+11.1f%%\n", app.c_str(),
                    100 * frac, 100 * gain);
        chart.push_back({app, 100 * frac});
    }
    note("");
    note("dependent-miss fraction (%):");
    barChart(chart, "%");
    note("");
    note("expected shape: pointer chasers (mcf, omnetpp) show large"
         " dependent fractions and large ideal gains; streamers show"
         " ~0 for both.");
    return 0;
}
