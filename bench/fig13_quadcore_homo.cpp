/**
 * @file
 * Figure 13: quad-core performance on homogeneous workloads (four
 * copies of each high-intensity benchmark), without and with the EMC.
 *
 * Paper shape: +9.5% average over no-prefetching (~8% over each
 * prefetcher); mcf gains the most (30% over no-PF); benchmarks with
 * no dependent misses (lbm, libquantum) gain ~nothing.
 */

#include <cmath>
#include <cstdio>

#include "bench/bench_util.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace emc;
    using namespace emc::bench;

    banner("Figure 13", "quad-core homogeneous workloads",
           "EMC: +9.5% average; mcf +30%; lbm ~0%");

    std::printf("%-12s %9s %9s %9s %9s\n", "benchmark", "base",
                "+emc", "ghb", "ghb+emc");

    // All (app, config) runs are independent: build the full job
    // list and fan it across threads, then print in job order.
    const auto apps = highIntensityNames();
    std::vector<RunJob> jobs;
    for (const auto &app : apps) {
        jobs.push_back({quadConfig(), homo(app)});
        jobs.push_back(
            {quadConfig(PrefetchConfig::kNone, true), homo(app)});
        jobs.push_back(
            {quadConfig(PrefetchConfig::kGhb, false), homo(app)});
        jobs.push_back(
            {quadConfig(PrefetchConfig::kGhb, true), homo(app)});
    }
    const std::vector<StatDump> res = runMany(jobs);

    double log_gain = 0;
    unsigned n = 0;
    for (std::size_t a = 0; a < apps.size(); ++a) {
        const StatDump &base = res[4 * a];
        const StatDump &emc = res[4 * a + 1];
        const StatDump &ghb = res[4 * a + 2];
        const StatDump &ghb_emc = res[4 * a + 3];
        const double g = relPerf(emc, base, 4);
        std::printf("%-12s %9.3f %9.3f %9.3f %9.3f\n",
                    apps[a].c_str(), 1.0, g, relPerf(ghb, base, 4),
                    relPerf(ghb_emc, base, 4));
        log_gain += std::log(g);
        ++n;
    }
    std::printf("\naverage EMC gain over no-PF: %+.1f%% (paper: +9.5%%)\n",
                100 * (std::exp(log_gain / n) - 1.0));
    note("expected shape: dependent-miss-heavy benchmarks (mcf,"
         " omnetpp) gain; pure streamers (lbm, libquantum, bwaves)"
         " are flat.");
    return 0;
}
