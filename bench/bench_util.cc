#include "bench/bench_util.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "common/thread_pool.hh"
#include "workload/profile.hh"

namespace emc::bench
{

namespace
{

/**
 * Apply the EMC_TRACE / EMC_TRACE_INTERVAL env overrides (DESIGN.md
 * §6) to one run's config. Bench binaries launch many Systems — some
 * concurrently via runMany() — so each traced run gets a distinct
 * "<EMC_TRACE>.runK.json" path from a process-wide counter.
 */
void
applyTraceEnv(SystemConfig &cfg)
{
    static std::atomic<unsigned> next_run{0};
    const char *prefix = std::getenv("EMC_TRACE");
    if (!prefix || !*prefix || !cfg.trace_path.empty())
        return;
    const unsigned k = next_run.fetch_add(1);
    cfg.trace_path =
        std::string(prefix) + ".run" + std::to_string(k) + ".json";
    if (const char *iv = std::getenv("EMC_TRACE_INTERVAL"))
        cfg.trace_interval = std::strtoull(iv, nullptr, 10);
}

/**
 * Stats sidecar files for crash-resumable sweeps: "name value" rows,
 * %.17g so a reloaded dump is bit-identical to the original doubles.
 */
bool
loadStatsFile(const std::string &path, StatDump &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t space = line.rfind(' ');
        if (space == std::string::npos || space == 0)
            return false;
        char *end = nullptr;
        const double v = std::strtod(line.c_str() + space + 1, &end);
        if (!end || *end != '\0')
            return false;
        out.put(line.substr(0, space), v);
    }
    return true;
}

void
writeStatsFile(const std::string &path, const StatDump &d)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp);
        if (!out)
            throw std::runtime_error("cannot write " + tmp);
        char buf[64];
        for (const auto &[name, value] : d.all()) {
            std::snprintf(buf, sizeof buf, "%.17g", value);
            out << name << ' ' << buf << '\n';
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        throw std::runtime_error("cannot rename " + tmp);
}

bool
fileExists(const std::string &path)
{
    return std::ifstream(path).good();
}

/**
 * One runMany() job, honoring the EMC_CKPT_DIR resume protocol: load
 * the job's .stats sidecar if a previous sweep already finished it,
 * otherwise restore its autosaved .ckpt (if any), run with periodic
 * autosave, and leave the sidecar behind for the next rerun.
 */
StatDump
runJob(const RunJob &job, std::size_t index)
{
    const char *dir = std::getenv("EMC_CKPT_DIR");
    if (!dir || !*dir)
        return run(job.cfg, job.benchmarks);

    const std::string stem =
        std::string(dir) + "/job" + std::to_string(index);
    StatDump cached;
    if (loadStatsFile(stem + ".stats", cached))
        return cached;

    Cycle interval = 1000000;
    if (const char *iv = std::getenv("EMC_CKPT_INTERVAL"))
        interval = std::strtoull(iv, nullptr, 10);

    System sys(job.cfg, job.benchmarks);
    const std::string ckpt = stem + ".ckpt";
    if (fileExists(ckpt))
        sys.restoreCheckpoint(ckpt);
    sys.setAutosave(ckpt, interval);
    sys.run();
    StatDump d = sys.dump();
    writeStatsFile(stem + ".stats", d);
    return d;
}

} // namespace

std::uint64_t
defaultUops()
{
    return targetUopsFromEnv(20000);
}

SystemConfig
quadConfig(PrefetchConfig pf, bool emc)
{
    SystemConfig cfg;
    cfg.prefetch = pf;
    cfg.emc_enabled = emc;
    cfg.target_uops = defaultUops();
    cfg.warmup_uops = defaultUops() / 2;
    return cfg;
}

SystemConfig
eightConfig(PrefetchConfig pf, bool emc, bool dual_mc)
{
    SystemConfig cfg;
    cfg.scaleToEightCores(dual_mc);
    cfg.prefetch = pf;
    cfg.emc_enabled = emc;
    cfg.target_uops = defaultUops();
    cfg.warmup_uops = defaultUops() / 2;
    return cfg;
}

StatDump
run(const SystemConfig &cfg, const std::vector<std::string> &benchmarks)
{
    SystemConfig traced_cfg = cfg;
    applyTraceEnv(traced_cfg);
    System sys(traced_cfg, benchmarks);
    sys.run();
    return sys.dump();
}

unsigned
benchThreads()
{
    // An explicit EMC_BENCH_THREADS always wins. Otherwise fall back
    // to inline (single-thread) execution on machines with <= 2
    // hardware threads — pool overhead and memory pressure outweigh
    // any overlap there, and a 1-thread ThreadPool runs jobs inline.
    if (std::getenv("EMC_BENCH_THREADS") != nullptr)
        return ThreadPool::defaultThreads();
    if (std::thread::hardware_concurrency() <= 2)
        return 1;
    return ThreadPool::defaultThreads();
}

std::vector<StatDump>
runMany(const std::vector<RunJob> &jobs,
        std::vector<RunFailure> *failures)
{
    std::vector<StatDump> results(jobs.size());
    std::vector<RunFailure> failed;
    std::mutex mu;
    ThreadPool pool(benchThreads());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const RunJob &job = jobs[i];
        pool.submit([&, i] {
            try {
                results[i] = runJob(job, i);
            } catch (const std::exception &e) {
                std::lock_guard<std::mutex> lock(mu);
                failed.push_back({i, e.what()});
            } catch (...) {
                std::lock_guard<std::mutex> lock(mu);
                failed.push_back({i, "unknown exception"});
            }
        });
    }
    pool.waitAll();
    std::sort(failed.begin(), failed.end(),
              [](const RunFailure &a, const RunFailure &b) {
                  return a.index < b.index;
              });
    if (failures)
        *failures = std::move(failed);
    return results;
}

std::vector<StatDump>
runMany(const std::vector<RunJob> &jobs)
{
    std::vector<RunFailure> failures;
    std::vector<StatDump> results = runMany(jobs, &failures);
    if (!failures.empty()) {
        for (const RunFailure &f : failures) {
            std::fprintf(stderr, "runMany: job %zu failed: %s\n",
                         f.index, f.what.c_str());
        }
        throw std::runtime_error(
            "runMany: " + std::to_string(failures.size()) + " of "
            + std::to_string(jobs.size()) + " jobs failed (job "
            + std::to_string(failures.front().index) + ": "
            + failures.front().what + ")");
    }
    return results;
}

std::vector<StatDump>
runManySampled(const std::vector<RunJob> &jobs, const SampleParams &p)
{
    std::vector<StatDump> results(jobs.size());
    std::vector<RunFailure> failed;
    std::mutex mu;
    ThreadPool pool(benchThreads());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const RunJob &job = jobs[i];
        pool.submit([&, i] {
            try {
                System sys(job.cfg, job.benchmarks);
                sys.runSampled(p);
                results[i] = sys.dump();
            } catch (const std::exception &e) {
                std::lock_guard<std::mutex> lock(mu);
                failed.push_back({i, e.what()});
            }
        });
    }
    pool.waitAll();
    if (!failed.empty()) {
        std::sort(failed.begin(), failed.end(),
                  [](const RunFailure &a, const RunFailure &b) {
                      return a.index < b.index;
                  });
        throw std::runtime_error(
            "runManySampled: " + std::to_string(failed.size()) + " of "
            + std::to_string(jobs.size()) + " jobs failed (job "
            + std::to_string(failed.front().index) + ": "
            + failed.front().what + ")");
    }
    return results;
}

std::vector<StatDump>
runManyWarmShared(const SystemConfig &warm_cfg,
                  const std::vector<std::string> &benchmarks,
                  const std::vector<SystemConfig> &cfgs)
{
    bool shared = true;
    if (const char *e = std::getenv("EMC_CKPT_SHARED_WARMUP"))
        shared = std::string(e) != "0";

    std::vector<std::uint8_t> warm;
    if (shared)
        warm = System(warm_cfg, benchmarks).warmupCheckpointBytes();

    std::vector<StatDump> results(cfgs.size());
    std::vector<RunFailure> failed;
    std::mutex mu;
    ThreadPool pool(benchThreads());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        pool.submit([&, i] {
            try {
                std::vector<std::uint8_t> own;
                if (!shared)
                    own = System(warm_cfg, benchmarks)
                              .warmupCheckpointBytes();
                SystemConfig cfg = cfgs[i];
                cfg.warmup_uops = 0;
                System sys(cfg, benchmarks);
                sys.restoreCheckpointBytes(shared ? warm : own);
                sys.run();
                results[i] = sys.dump();
            } catch (const std::exception &e) {
                std::lock_guard<std::mutex> lock(mu);
                failed.push_back({i, e.what()});
            }
        });
    }
    pool.waitAll();
    if (!failed.empty()) {
        std::sort(failed.begin(), failed.end(),
                  [](const RunFailure &a, const RunFailure &b) {
                      return a.index < b.index;
                  });
        for (const RunFailure &f : failed) {
            std::fprintf(stderr,
                         "runManyWarmShared: config %zu failed: %s\n",
                         f.index, f.what.c_str());
        }
        throw std::runtime_error(
            "runManyWarmShared: " + std::to_string(failed.size())
            + " of " + std::to_string(cfgs.size())
            + " configs failed (config "
            + std::to_string(failed.front().index) + ": "
            + failed.front().what + ")");
    }
    return results;
}

double
relPerf(const StatDump &d, const StatDump &base, unsigned cores)
{
    double log_sum = 0;
    for (unsigned i = 0; i < cores; ++i) {
        const std::string key = "core" + std::to_string(i) + ".ipc";
        const double a = d.get(key);
        const double b = base.get(key);
        if (a > 0 && b > 0)
            log_sum += std::log(a / b);
    }
    return std::exp(log_sum / cores);
}

void
banner(const std::string &item, const std::string &what,
       const std::string &paper_says)
{
    std::printf("================================================================\n");
    std::printf("%s — %s\n", item.c_str(), what.c_str());
    if (!paper_says.empty())
        std::printf("paper: %s\n", paper_says.c_str());
    std::printf("uops/core: %llu (set EMC_SIM_UOPS to lengthen)\n",
                static_cast<unsigned long long>(defaultUops()));
    std::printf("================================================================\n");
}

void
note(const std::string &text)
{
    std::printf("%s\n", text.c_str());
}

std::vector<std::string>
homo(const std::string &name)
{
    return {name, name, name, name};
}

void
barChart(const std::vector<std::pair<std::string, double>> &rows,
         const std::string &unit, unsigned width)
{
    double max = 0;
    for (const auto &[label, v] : rows)
        max = std::max(max, v);
    if (max <= 0)
        max = 1;
    for (const auto &[label, v] : rows) {
        const unsigned n = static_cast<unsigned>(
            width * (v / max) + 0.5);
        std::printf("  %-14s |", label.c_str());
        for (unsigned i = 0; i < n; ++i)
            std::printf("#");
        std::printf("%*s %.2f%s\n", static_cast<int>(width - n + 1),
                    "", v, unit.c_str());
    }
}

void
groupedChart(const std::vector<std::string> &series,
             const std::vector<std::pair<std::string,
                                         std::vector<double>>> &rows,
             unsigned width)
{
    static const char glyphs[] = {'#', '=', '+', ':', '.'};
    double max = 0;
    for (const auto &[label, vs] : rows) {
        for (double v : vs)
            max = std::max(max, v);
    }
    if (max <= 0)
        max = 1;
    std::printf("  legend:");
    for (std::size_t s = 0; s < series.size(); ++s)
        std::printf("  %c %s", glyphs[s % sizeof(glyphs)],
                    series[s].c_str());
    std::printf("\n");
    for (const auto &[label, vs] : rows) {
        for (std::size_t s = 0; s < vs.size(); ++s) {
            const unsigned n = static_cast<unsigned>(
                width * (vs[s] / max) + 0.5);
            std::printf("  %-8s %c |", s == 0 ? label.c_str() : "",
                        glyphs[s % sizeof(glyphs)]);
            for (unsigned i = 0; i < n; ++i)
                std::printf("%c", glyphs[s % sizeof(glyphs)]);
            std::printf("%*s %.3f\n", static_cast<int>(width - n + 1),
                        "", vs[s]);
        }
    }
}

std::vector<std::string>
eightCoreMix(std::size_t h_index)
{
    const auto &mix = quadWorkloads().at(h_index);
    std::vector<std::string> out = mix;
    out.insert(out.end(), mix.begin(), mix.end());
    return out;
}

} // namespace emc::bench
