#include "bench/bench_util.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "ckpt/store.hh"
#include "common/thread_pool.hh"
#include "sweep/sweep.hh"
#include "workload/profile.hh"

namespace emc::bench
{

namespace
{

/**
 * Apply the EMC_TRACE / EMC_TRACE_INTERVAL env overrides (DESIGN.md
 * §6) to one run's config. Bench binaries launch many Systems — some
 * concurrently via runMany() — so each traced run gets a distinct
 * "<EMC_TRACE>.runK.json" path from a process-wide counter.
 */
void
applyTraceEnv(SystemConfig &cfg)
{
    static std::atomic<unsigned> next_run{0};
    const char *prefix = std::getenv("EMC_TRACE");
    if (!prefix || !*prefix || !cfg.trace_path.empty())
        return;
    const unsigned k = next_run.fetch_add(1);
    cfg.trace_path =
        std::string(prefix) + ".run" + std::to_string(k) + ".json";
    if (const char *iv = std::getenv("EMC_TRACE_INTERVAL"))
        cfg.trace_interval = std::strtoull(iv, nullptr, 10);
}

/**
 * Stats sidecar files for crash-resumable sweeps: "name value" rows,
 * %.17g so a reloaded dump is bit-identical to the original doubles.
 */
bool
loadStatsFile(const std::string &path, StatDump &out)
{
    std::ifstream in(path);
    if (!in)
        return false;
    std::string line;
    while (std::getline(in, line)) {
        const std::size_t space = line.rfind(' ');
        if (space == std::string::npos || space == 0)
            return false;
        char *end = nullptr;
        const double v = std::strtod(line.c_str() + space + 1, &end);
        if (!end || *end != '\0')
            return false;
        out.put(line.substr(0, space), v);
    }
    return true;
}

void
writeStatsFile(const std::string &path, const StatDump &d)
{
    const std::string tmp = path + ".tmp";
    {
        std::ofstream out(tmp);
        if (!out)
            throw std::runtime_error("cannot write " + tmp);
        char buf[64];
        for (const auto &[name, value] : d.all()) {
            std::snprintf(buf, sizeof buf, "%.17g", value);
            out << name << ' ' << buf << '\n';
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        throw std::runtime_error("cannot rename " + tmp);
}

bool
fileExists(const std::string &path)
{
    return std::ifstream(path).good();
}

/** Non-empty env var, or nullptr. */
const char *
envOr(const char *name)
{
    const char *v = std::getenv(name);
    return (v && *v) ? v : nullptr;
}

/**
 * Sharded-run trace naming: job-indexed instead of the process-wide
 * counter, because forked workers each inherit a copy of that counter
 * and would collide on "<prefix>.run0.json".
 */
void
applyShardedTraceEnv(SystemConfig &cfg, std::size_t index)
{
    const char *prefix = envOr("EMC_TRACE");
    if (!prefix || !cfg.trace_path.empty())
        return;
    cfg.trace_path =
        std::string(prefix) + ".job" + std::to_string(index) + ".json";
    if (const char *iv = std::getenv("EMC_TRACE_INTERVAL"))
        cfg.trace_interval = std::strtoull(iv, nullptr, 10);
}

/**
 * Attach best-effort interval streaming onto the worker's message
 * pipe (EMC_SWEEP_STREAM_INTERVAL cycles; off unless set). The lines
 * ride the coordinator protocol as "interval" records.
 */
void
maybeAttachStream(System &sys, std::size_t index, std::FILE *msg)
{
    const char *iv = msg ? envOr("EMC_SWEEP_STREAM_INTERVAL") : nullptr;
    if (!iv)
        return;
    char prefix[64];
    std::snprintf(prefix, sizeof prefix,
                  "\"type\":\"interval\",\"job\":%zu,", index);
    sys.enableStatStream(msg, std::strtoull(iv, nullptr, 10), prefix);
}

/**
 * One runMany() job, honoring the crash-resume protocol: load the
 * job's .stats sidecar if a previous sweep already finished it,
 * otherwise restore its autosaved checkpoint (if any), run with
 * periodic autosave, and leave the sidecar behind for the next rerun.
 * Autosaves go to flat "<EMC_CKPT_DIR>/jobN.ckpt" files, or — when
 * EMC_CKPT_STORE is set instead — into a content-addressed
 * ckpt::Store, where config-point images of one sweep deduplicate
 * against each other. @p msg is the sharded worker's message pipe
 * (null for in-process runs).
 */
StatDump
runJob(const RunJob &job, std::size_t index, std::FILE *msg = nullptr)
{
    const char *dir = envOr("EMC_CKPT_DIR");
    const char *store_dir = envOr("EMC_CKPT_STORE");
    if (!dir && !store_dir && !msg)
        return run(job.cfg, job.benchmarks);

    SystemConfig cfg = job.cfg;
    if (msg)
        applyShardedTraceEnv(cfg, index);
    else
        applyTraceEnv(cfg);

    const std::string jobname = "job" + std::to_string(index);
    const std::string base = dir ? dir : (store_dir ? store_dir : "");
    StatDump cached;
    if (!base.empty()
        && loadStatsFile(base + "/" + jobname + ".stats", cached))
        return cached;

    Cycle interval = 1000000;
    if (const char *iv = std::getenv("EMC_CKPT_INTERVAL"))
        interval = std::strtoull(iv, nullptr, 10);

    System sys(cfg, job.benchmarks);
    std::shared_ptr<ckpt::Store> store;
    if (store_dir) {
        store = std::make_shared<ckpt::Store>(store_dir);
        if (store->has(jobname))
            sys.restoreCheckpointBytes(store->get(jobname));
    } else if (dir) {
        const std::string ckpt = base + "/" + jobname + ".ckpt";
        if (fileExists(ckpt))
            sys.restoreCheckpoint(ckpt);
    }
    maybeAttachStream(sys, index, msg);
    if (store) {
        sys.setAutosave(
            [store, jobname](std::vector<std::uint8_t> &&img) {
                store->put(jobname, img);
            },
            interval);
    } else if (dir) {
        sys.setAutosave(base + "/" + jobname + ".ckpt", interval);
    }
    sys.run();
    StatDump d = sys.dump();
    if (!base.empty())
        writeStatsFile(base + "/" + jobname + ".stats", d);
    return d;
}

/**
 * One runManySampled() job with sidecar-granular resume: a finished
 * job's "<EMC_CKPT_DIR>/jobN.sampled.stats" is reloaded instead of
 * re-simulating; an *interrupted* sampled job restarts from scratch
 * (the fastwarm phase has no mid-run checkpoint), so resume here is
 * job-granular, not cycle-granular.
 */
StatDump
runSampledJob(const RunJob &job, const SampleParams &p,
              std::size_t index, std::FILE *msg = nullptr)
{
    std::string sidecar;
    if (const char *dir = envOr("EMC_CKPT_DIR")) {
        sidecar = std::string(dir) + "/job" + std::to_string(index)
                  + ".sampled.stats";
        StatDump cached;
        if (loadStatsFile(sidecar, cached))
            return cached;
    }
    System sys(job.cfg, job.benchmarks);
    maybeAttachStream(sys, index, msg);
    sys.runSampled(p);
    StatDump d = sys.dump();
    if (!sidecar.empty())
        writeStatsFile(sidecar, d);
    return d;
}

/** Coordinator-side merged interval stream (EMC_SWEEP_STREAM=path). */
std::FILE *
openStreamSink()
{
    const char *path = envOr("EMC_SWEEP_STREAM");
    return path ? std::fopen(path, "a") : nullptr;
}

} // namespace

std::uint64_t
defaultUops()
{
    return targetUopsFromEnv(20000);
}

SystemConfig
quadConfig(PrefetchConfig pf, bool emc)
{
    SystemConfig cfg;
    cfg.prefetch = pf;
    cfg.emc_enabled = emc;
    cfg.target_uops = defaultUops();
    cfg.warmup_uops = defaultUops() / 2;
    return cfg;
}

SystemConfig
eightConfig(PrefetchConfig pf, bool emc, bool dual_mc)
{
    SystemConfig cfg;
    cfg.scaleToEightCores(dual_mc);
    cfg.prefetch = pf;
    cfg.emc_enabled = emc;
    cfg.target_uops = defaultUops();
    cfg.warmup_uops = defaultUops() / 2;
    return cfg;
}

StatDump
run(const SystemConfig &cfg, const std::vector<std::string> &benchmarks)
{
    SystemConfig traced_cfg = cfg;
    applyTraceEnv(traced_cfg);
    System sys(traced_cfg, benchmarks);
    sys.run();
    return sys.dump();
}

unsigned
benchThreads()
{
    // An explicit EMC_BENCH_THREADS always wins. Otherwise fall back
    // to inline (single-thread) execution on machines with <= 2
    // hardware threads — pool overhead and memory pressure outweigh
    // any overlap there, and a 1-thread ThreadPool runs jobs inline.
    if (std::getenv("EMC_BENCH_THREADS") != nullptr)
        return ThreadPool::defaultThreads();
    if (std::thread::hardware_concurrency() <= 2)
        return 1;
    return ThreadPool::defaultThreads();
}

unsigned
benchProcs()
{
    const char *e = envOr("EMC_BENCH_PROCS");
    if (!e)
        return 0;
    return static_cast<unsigned>(std::strtoul(e, nullptr, 10));
}

std::vector<StatDump>
runManySharded(const std::vector<RunJob> &jobs, unsigned procs,
               std::vector<RunFailure> *failures)
{
    sweep::ShardOptions opt;
    opt.abort_on_fail = false;
    opt.forward_intervals = openStreamSink();

    sweep::ShardReport rep;
    try {
        rep = sweep::runShardedReport(
            jobs.size(), procs,
            [&jobs](std::size_t i, std::FILE *msg) {
                return runJob(jobs[i], i, msg);
            },
            opt);
    } catch (...) {
        if (opt.forward_intervals)
            std::fclose(opt.forward_intervals);
        throw;
    }
    if (opt.forward_intervals)
        std::fclose(opt.forward_intervals);

    std::vector<RunFailure> failed;
    for (const sweep::JobFailure &f : rep.failures)
        failed.push_back({f.job, f.what});
    if (failures) {
        *failures = std::move(failed);
    } else if (!failed.empty()) {
        for (const RunFailure &f : failed) {
            std::fprintf(stderr, "runManySharded: job %zu failed: %s\n",
                         f.index, f.what.c_str());
        }
        throw std::runtime_error(
            "runManySharded: " + std::to_string(failed.size()) + " of "
            + std::to_string(jobs.size()) + " jobs failed (job "
            + std::to_string(failed.front().index) + ": "
            + failed.front().what + ")");
    }
    return std::move(rep.results);
}

std::vector<StatDump>
runMany(const std::vector<RunJob> &jobs,
        std::vector<RunFailure> *failures)
{
    if (const unsigned procs = benchProcs())
        return runManySharded(jobs, procs, failures);

    std::vector<StatDump> results(jobs.size());
    std::vector<RunFailure> failed;
    std::mutex mu;
    ThreadPool pool(benchThreads());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const RunJob &job = jobs[i];
        pool.submit([&, i] {
            try {
                results[i] = runJob(job, i);
            } catch (const std::exception &e) {
                std::lock_guard<std::mutex> lock(mu);
                failed.push_back({i, e.what()});
            } catch (...) {
                std::lock_guard<std::mutex> lock(mu);
                failed.push_back({i, "unknown exception"});
            }
        });
    }
    pool.waitAll();
    std::sort(failed.begin(), failed.end(),
              [](const RunFailure &a, const RunFailure &b) {
                  return a.index < b.index;
              });
    if (failures)
        *failures = std::move(failed);
    return results;
}

std::vector<StatDump>
runMany(const std::vector<RunJob> &jobs)
{
    std::vector<RunFailure> failures;
    std::vector<StatDump> results = runMany(jobs, &failures);
    if (!failures.empty()) {
        for (const RunFailure &f : failures) {
            std::fprintf(stderr, "runMany: job %zu failed: %s\n",
                         f.index, f.what.c_str());
        }
        throw std::runtime_error(
            "runMany: " + std::to_string(failures.size()) + " of "
            + std::to_string(jobs.size()) + " jobs failed (job "
            + std::to_string(failures.front().index) + ": "
            + failures.front().what + ")");
    }
    return results;
}

std::vector<StatDump>
runManySampled(const std::vector<RunJob> &jobs, const SampleParams &p)
{
    if (const unsigned procs = benchProcs()) {
        sweep::ShardOptions opt;
        opt.forward_intervals = openStreamSink();
        std::vector<StatDump> results;
        try {
            results = sweep::runSharded(
                jobs.size(), procs,
                [&jobs, &p](std::size_t i, std::FILE *msg) {
                    return runSampledJob(jobs[i], p, i, msg);
                },
                opt);
        } catch (...) {
            if (opt.forward_intervals)
                std::fclose(opt.forward_intervals);
            throw;
        }
        if (opt.forward_intervals)
            std::fclose(opt.forward_intervals);
        return results;
    }

    std::vector<StatDump> results(jobs.size());
    std::vector<RunFailure> failed;
    std::mutex mu;
    ThreadPool pool(benchThreads());
    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const RunJob &job = jobs[i];
        pool.submit([&, i] {
            try {
                results[i] = runSampledJob(job, p, i);
            } catch (const std::exception &e) {
                std::lock_guard<std::mutex> lock(mu);
                failed.push_back({i, e.what()});
            }
        });
    }
    pool.waitAll();
    if (!failed.empty()) {
        std::sort(failed.begin(), failed.end(),
                  [](const RunFailure &a, const RunFailure &b) {
                      return a.index < b.index;
                  });
        throw std::runtime_error(
            "runManySampled: " + std::to_string(failed.size()) + " of "
            + std::to_string(jobs.size()) + " jobs failed (job "
            + std::to_string(failed.front().index) + ": "
            + failed.front().what + ")");
    }
    return results;
}

std::vector<StatDump>
runManyWarmShared(const SystemConfig &warm_cfg,
                  const std::vector<std::string> &benchmarks,
                  const std::vector<SystemConfig> &cfgs)
{
    bool shared = true;
    if (const char *e = std::getenv("EMC_CKPT_SHARED_WARMUP"))
        shared = std::string(e) != "0";

    std::vector<std::uint8_t> warm;
    if (shared)
        warm = System(warm_cfg, benchmarks).warmupCheckpointBytes();

    if (const unsigned procs = benchProcs()) {
        // The warm image is materialized *before* the fork, so every
        // worker shares its pages copy-on-write — N processes, one
        // warmup RSS.
        sweep::ShardOptions opt;
        opt.forward_intervals = openStreamSink();
        std::vector<StatDump> results;
        try {
            results = sweep::runSharded(
                cfgs.size(), procs,
                [&](std::size_t i, std::FILE *msg) {
                    std::vector<std::uint8_t> own;
                    if (!shared) {
                        own = System(warm_cfg, benchmarks)
                                  .warmupCheckpointBytes();
                    }
                    SystemConfig cfg = cfgs[i];
                    cfg.warmup_uops = 0;
                    System sys(cfg, benchmarks);
                    sys.restoreCheckpointBytes(shared ? warm : own);
                    maybeAttachStream(sys, i, msg);
                    sys.run();
                    return sys.dump();
                },
                opt);
        } catch (...) {
            if (opt.forward_intervals)
                std::fclose(opt.forward_intervals);
            throw;
        }
        if (opt.forward_intervals)
            std::fclose(opt.forward_intervals);
        return results;
    }

    std::vector<StatDump> results(cfgs.size());
    std::vector<RunFailure> failed;
    std::mutex mu;
    ThreadPool pool(benchThreads());
    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        pool.submit([&, i] {
            try {
                std::vector<std::uint8_t> own;
                if (!shared)
                    own = System(warm_cfg, benchmarks)
                              .warmupCheckpointBytes();
                SystemConfig cfg = cfgs[i];
                cfg.warmup_uops = 0;
                System sys(cfg, benchmarks);
                sys.restoreCheckpointBytes(shared ? warm : own);
                sys.run();
                results[i] = sys.dump();
            } catch (const std::exception &e) {
                std::lock_guard<std::mutex> lock(mu);
                failed.push_back({i, e.what()});
            }
        });
    }
    pool.waitAll();
    if (!failed.empty()) {
        std::sort(failed.begin(), failed.end(),
                  [](const RunFailure &a, const RunFailure &b) {
                      return a.index < b.index;
                  });
        for (const RunFailure &f : failed) {
            std::fprintf(stderr,
                         "runManyWarmShared: config %zu failed: %s\n",
                         f.index, f.what.c_str());
        }
        throw std::runtime_error(
            "runManyWarmShared: " + std::to_string(failed.size())
            + " of " + std::to_string(cfgs.size())
            + " configs failed (config "
            + std::to_string(failed.front().index) + ": "
            + failed.front().what + ")");
    }
    return results;
}

double
relPerf(const StatDump &d, const StatDump &base, unsigned cores)
{
    double log_sum = 0;
    for (unsigned i = 0; i < cores; ++i) {
        const std::string key = "core" + std::to_string(i) + ".ipc";
        const double a = d.get(key);
        const double b = base.get(key);
        if (a > 0 && b > 0)
            log_sum += std::log(a / b);
    }
    return std::exp(log_sum / cores);
}

void
banner(const std::string &item, const std::string &what,
       const std::string &paper_says)
{
    std::printf("================================================================\n");
    std::printf("%s — %s\n", item.c_str(), what.c_str());
    if (!paper_says.empty())
        std::printf("paper: %s\n", paper_says.c_str());
    std::printf("uops/core: %llu (set EMC_SIM_UOPS to lengthen)\n",
                static_cast<unsigned long long>(defaultUops()));
    std::printf("================================================================\n");
}

void
note(const std::string &text)
{
    std::printf("%s\n", text.c_str());
}

std::vector<std::string>
homo(const std::string &name)
{
    return {name, name, name, name};
}

void
barChart(const std::vector<std::pair<std::string, double>> &rows,
         const std::string &unit, unsigned width)
{
    double max = 0;
    for (const auto &[label, v] : rows)
        max = std::max(max, v);
    if (max <= 0)
        max = 1;
    for (const auto &[label, v] : rows) {
        const unsigned n = static_cast<unsigned>(
            width * (v / max) + 0.5);
        std::printf("  %-14s |", label.c_str());
        for (unsigned i = 0; i < n; ++i)
            std::printf("#");
        std::printf("%*s %.2f%s\n", static_cast<int>(width - n + 1),
                    "", v, unit.c_str());
    }
}

void
groupedChart(const std::vector<std::string> &series,
             const std::vector<std::pair<std::string,
                                         std::vector<double>>> &rows,
             unsigned width)
{
    static const char glyphs[] = {'#', '=', '+', ':', '.'};
    double max = 0;
    for (const auto &[label, vs] : rows) {
        for (double v : vs)
            max = std::max(max, v);
    }
    if (max <= 0)
        max = 1;
    std::printf("  legend:");
    for (std::size_t s = 0; s < series.size(); ++s)
        std::printf("  %c %s", glyphs[s % sizeof(glyphs)],
                    series[s].c_str());
    std::printf("\n");
    for (const auto &[label, vs] : rows) {
        for (std::size_t s = 0; s < vs.size(); ++s) {
            const unsigned n = static_cast<unsigned>(
                width * (vs[s] / max) + 0.5);
            std::printf("  %-8s %c |", s == 0 ? label.c_str() : "",
                        glyphs[s % sizeof(glyphs)]);
            for (unsigned i = 0; i < n; ++i)
                std::printf("%c", glyphs[s % sizeof(glyphs)]);
            std::printf("%*s %.3f\n", static_cast<int>(width - n + 1),
                        "", vs[s]);
        }
    }
}

std::vector<std::string>
eightCoreMix(std::size_t h_index)
{
    const auto &mix = quadWorkloads().at(h_index);
    std::vector<std::string> out = mix;
    out.insert(out.end(), mix.begin(), mix.end());
    return out;
}

} // namespace emc::bench
