/**
 * @file
 * Extension: off-chip predictor head-to-head over the irregular
 * kernel library (BENCH_offchip.json).
 *
 * The paper gates the EMC's LLC bypass on a PC-hashed 3-bit table
 * (Section 4.3); Hermes (Bera et al., MICRO 2022) instead predicts
 * off-chip loads at the core with a multi-feature perceptron and
 * launches speculative DRAM probes at dispatch. With both behind the
 * src/pred interface (DESIGN.md §13), this bench races four machine
 * configurations per irregular profile, single-core:
 *
 *   base        no EMC, no prediction
 *   emc-table   EMC, bypass gated on the paper's 3-bit table
 *   emc-perc    EMC, bypass gated on the hashed perceptron
 *   hermes      Hermes-at-core probes, no EMC
 *   emc+hermes  EMC (table bypass) plus Hermes probes
 *
 * and reports each predictor's accuracy/coverage on the same LLC
 * outcome stream plus the latency each mechanism saves (EMC bypass
 * cycles, Hermes probe head start). Results land in
 * BENCH_offchip.json so CI can assert every family is covered.
 *
 * Usage: ext_offchip_prediction [output.json]
 *   default output path: BENCH_offchip.json
 */

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "workload/profile.hh"

namespace
{

/** Kernel family a profile belongs to (matches its dominant mix). */
const char *
familyOf(const std::string &name)
{
    if (name == "bfs" || name == "pagerank")
        return "graph";
    if (name == "hashjoin" || name == "btree")
        return "hash";
    return "gather";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace emc;
    using namespace emc::bench;

    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_offchip.json";

    banner("Extension", "off-chip predictor zoo head-to-head",
           "table vs perceptron vs Hermes-at-core vs EMC+Hermes");

    // Five configs per profile, all sharing the single-core Table 1
    // machine; only the prediction attach points differ.
    enum Cfg
    {
        kBase = 0,
        kEmcTable,
        kEmcPerc,
        kHermes,
        kEmcHermes,
        kNumCfgs
    };
    const std::vector<std::string> &profiles = irregularNames();
    std::vector<RunJob> jobs;
    for (const std::string &name : profiles) {
        for (int c = 0; c < kNumCfgs; ++c) {
            const bool emc =
                c == kEmcTable || c == kEmcPerc || c == kEmcHermes;
            SystemConfig cfg = quadConfig(PrefetchConfig::kNone, emc);
            cfg.num_cores = 1;
            if (c == kEmcPerc)
                cfg.emc.pred = pred::PredConfig::perceptron();
            if (c == kHermes || c == kEmcHermes)
                cfg.core.hermes_enabled = true;
            jobs.push_back({cfg, {name}});
        }
    }
    const std::vector<StatDump> results = runMany(jobs);

    struct Row
    {
        std::string name;
        std::string family;
        double perf[kNumCfgs];      ///< relPerf vs base
        double table_acc, table_cov;
        double perc_acc, perc_cov;
        double hermes_acc, hermes_cov;
        double bypass_saved;        ///< EMC bypass cycles (table cfg)
        double probe_saved;         ///< Hermes head-start cycles
        double head_start;          ///< avg cycles per useful probe
    };
    std::vector<Row> rows;

    std::printf("%-9s %-7s | %9s %9s | %9s %9s | %9s %9s\n", "profile",
                "family", "tbl_acc", "tbl_cov", "perc_acc", "perc_cov",
                "herm_acc", "herm_cov");
    for (std::size_t i = 0; i < profiles.size(); ++i) {
        const StatDump *d = &results[i * kNumCfgs];
        Row r;
        r.name = profiles[i];
        r.family = familyOf(r.name);
        for (int c = 0; c < kNumCfgs; ++c)
            r.perf[c] = relPerf(d[c], d[kBase], 1);
        r.table_acc = d[kEmcTable].get("pred.emc.accuracy");
        r.table_cov = d[kEmcTable].get("pred.emc.coverage");
        r.perc_acc = d[kEmcPerc].get("pred.emc.accuracy");
        r.perc_cov = d[kEmcPerc].get("pred.emc.coverage");
        r.hermes_acc = d[kHermes].get("pred.hermes.accuracy");
        r.hermes_cov = d[kHermes].get("pred.hermes.coverage");
        r.bypass_saved = d[kEmcTable].get("pred.emc.bypass_cycles_saved");
        r.probe_saved = d[kHermes].get("hermes.saved_cycles");
        r.head_start = d[kHermes].get("hermes.avg_head_start");
        rows.push_back(r);

        std::printf("%-9s %-7s | %8.1f%% %8.1f%% | %8.1f%% %8.1f%% | "
                    "%8.1f%% %8.1f%%\n",
                    r.name.c_str(), r.family.c_str(),
                    100 * r.table_acc, 100 * r.table_cov,
                    100 * r.perc_acc, 100 * r.perc_cov,
                    100 * r.hermes_acc, 100 * r.hermes_cov);
    }

    note("");
    note("accuracy  trained-outcome agreement on the LLC stream the");
    note("          attach point sees (EMC engines share one stream,");
    note("          so table vs perceptron is like-for-like)");
    note("coverage  fraction of actual off-chip misses predicted");
    std::printf("\n%-9s %10s %10s %10s %10s\n", "profile", "emc-table",
                "emc-perc", "hermes", "emc+hermes");
    for (const Row &r : rows) {
        std::printf("%-9s %10.4f %10.4f %10.4f %10.4f\n",
                    r.name.c_str(), r.perf[kEmcTable], r.perf[kEmcPerc],
                    r.perf[kHermes], r.perf[kEmcHermes]);
    }
    std::vector<std::pair<std::string, std::vector<double>>> chart;
    for (const Row &r : rows)
        chart.push_back({r.name, {r.table_acc, r.perc_acc,
                                  r.hermes_acc}});
    groupedChart({"table", "perceptron", "hermes"}, chart);

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f) {
        std::perror("fopen");
        return 1;
    }
    std::fprintf(f, "{\n  \"profiles\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(
            f,
            "    {\"profile\": \"%s\", \"family\": \"%s\",\n"
            "     \"table\": {\"accuracy\": %.4f, \"coverage\": %.4f, "
            "\"bypass_cycles_saved\": %.0f, \"rel_perf\": %.4f},\n"
            "     \"perceptron\": {\"accuracy\": %.4f, "
            "\"coverage\": %.4f, \"rel_perf\": %.4f},\n"
            "     \"hermes\": {\"accuracy\": %.4f, \"coverage\": %.4f, "
            "\"saved_cycles\": %.0f, \"avg_head_start\": %.2f, "
            "\"rel_perf\": %.4f},\n"
            "     \"emc_hermes\": {\"rel_perf\": %.4f}}%s\n",
            r.name.c_str(), r.family.c_str(), r.table_acc, r.table_cov,
            r.bypass_saved, r.perf[kEmcTable], r.perc_acc, r.perc_cov,
            r.perf[kEmcPerc], r.hermes_acc, r.hermes_cov,
            r.probe_saved, r.head_start, r.perf[kHermes],
            r.perf[kEmcHermes], i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
    return 0;
}
