/**
 * @file
 * google-benchmark microbenchmarks of the simulator's hot primitives:
 * cache lookups, DRAM channel scheduling, ring movement, the
 * workload generator and whole-system cycles. These guard the
 * simulator's own performance (a 1-second figure bench runs millions
 * of these operations).
 */

#include <benchmark/benchmark.h>

#include "cache/cache.hh"
#include "common/rng.hh"
#include "dram/dram_channel.hh"
#include "mem/functional_memory.hh"
#include "ring/ring.hh"
#include "sim/system.hh"
#include "workload/synthetic.hh"

namespace
{

using namespace emc;

void
BM_CacheAccess(benchmark::State &state)
{
    Cache cache(1 << 20, 8, "bm");
    Rng rng(1);
    std::vector<Addr> addrs;
    for (int i = 0; i < 4096; ++i)
        addrs.push_back(rng.below(1 << 18) << kLineShift);
    for (Addr a : addrs) {
        if (!cache.peek(a))
            cache.insert(a);
    }
    std::size_t i = 0;
    for (auto _ : state) {
        benchmark::DoNotOptimize(cache.access(addrs[i & 4095]));
        ++i;
    }
}
BENCHMARK(BM_CacheAccess);

void
BM_CacheInsertEvict(benchmark::State &state)
{
    Cache cache(64 * 1024, 8, "bm");
    Rng rng(2);
    for (auto _ : state) {
        const Addr a = rng.below(1 << 20) << kLineShift;
        if (!cache.peek(a))
            benchmark::DoNotOptimize(cache.insert(a));
    }
}
BENCHMARK(BM_CacheInsertEvict);

void
BM_DramChannelTick(benchmark::State &state)
{
    DramGeometry geo;
    DramChannel chan(geo, DramTiming{}, SchedPolicy::kBatch, 64, 4);
    chan.setCallback([](const MemRequest &) {});
    Rng rng(3);
    Cycle now = 1;
    for (auto _ : state) {
        if (chan.canAccept() && rng.chance(0.1)) {
            MemRequest r;
            r.paddr = rng.below(1 << 22) << kLineShift;
            r.core = static_cast<CoreId>(rng.below(4));
            r.token = now;
            chan.enqueue(r, now);
        }
        chan.tick(now++);
    }
}
BENCHMARK(BM_DramChannelTick);

void
BM_RingTick(benchmark::State &state)
{
    Ring ring(5, true);
    ring.setDeliver([](const RingMsg &) {});
    Rng rng(4);
    Cycle now = 1;
    for (auto _ : state) {
        if (rng.chance(0.3)) {
            RingMsg m;
            m.src = static_cast<unsigned>(rng.below(5));
            m.dst = (m.src + 1 + rng.below(4)) % 5;
            ring.send(m, now);
        }
        ring.tick(now++);
    }
}
BENCHMARK(BM_RingTick);

void
BM_SyntheticTraceGen(benchmark::State &state)
{
    FunctionalMemory mem;
    SyntheticProgram prog(profileByName("mcf"), mem, 5);
    DynUop d;
    for (auto _ : state) {
        prog.next(d);
        benchmark::DoNotOptimize(d);
    }
}
BENCHMARK(BM_SyntheticTraceGen);

void
BM_SystemCycle(benchmark::State &state)
{
    SystemConfig cfg;
    cfg.emc_enabled = state.range(0) != 0;
    cfg.target_uops = 1ull << 60;  // never finishes inside the loop
    System sys(cfg, {"mcf", "libquantum", "omnetpp", "bwaves"});
    for (auto _ : state)
        sys.tickOnce();
    state.SetLabel(cfg.emc_enabled ? "with-emc" : "no-emc");
}
BENCHMARK(BM_SystemCycle)->Arg(0)->Arg(1);

} // namespace

BENCHMARK_MAIN();
