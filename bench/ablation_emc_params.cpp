/**
 * @file
 * Ablation study over the EMC design choices DESIGN.md calls out
 * (beyond the paper's reported sensitivity analysis): number of
 * contexts, chain length cap, EMC data cache size, the LLC hit/miss
 * predictor and the direct-to-DRAM bypass.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace emc;
    using namespace emc::bench;

    banner("Ablation", "EMC parameter sensitivity (H4 mix)",
           "paper chose 2 contexts / 16-uop chains / 4 KB dcache via "
           "sensitivity analysis");

    const auto &mix = quadWorkloads()[3];  // H4: mcf+sphinx3+soplex+libq

    // Build the whole variant list first, then warm once under the
    // no-EMC baseline and fork every config point from the shared
    // warmup image (DESIGN.md §7). Every variant below only touches
    // EMC / chain knobs, so all of them are warmup-compatible.
    std::vector<std::string> names;
    std::vector<SystemConfig> cfgs;
    auto add = [&](const std::string &name, const SystemConfig &c) {
        names.push_back(name);
        cfgs.push_back(c);
    };

    const SystemConfig warm_cfg = quadConfig();
    cfgs.push_back(warm_cfg);  // no-EMC baseline

    const SystemConfig cfg = quadConfig(PrefetchConfig::kNone, true);
    add("emc (paper config)", cfg);

    for (unsigned ctx : {1u, 4u}) {
        SystemConfig c = cfg;
        c.emc.contexts = ctx;
        char name[64];
        std::snprintf(name, sizeof(name), "contexts=%u", ctx);
        add(name, c);
    }
    for (unsigned cap : {4u, 8u}) {
        SystemConfig c = cfg;
        c.core.chain_max_uops = cap;
        char name[64];
        std::snprintf(name, sizeof(name), "chain_cap=%u uops", cap);
        add(name, c);
    }
    for (unsigned ind : {2u, 3u}) {
        SystemConfig c = cfg;
        c.core.chain_max_indirection = ind;
        char name[64];
        std::snprintf(name, sizeof(name), "indirection=%u lines", ind);
        add(name, c);
    }
    for (unsigned kb : {1u, 16u}) {
        SystemConfig c = cfg;
        c.emc.dcache_bytes = kb * 1024;
        char name[64];
        std::snprintf(name, sizeof(name), "dcache=%u KB", kb);
        add(name, c);
    }
    {
        SystemConfig c = cfg;
        c.emc.miss_predictor_enabled = false;
        add("no miss predictor", c);
    }
    {
        SystemConfig c = cfg;
        c.emc.direct_dram = false;
        add("no direct-DRAM bypass", c);
    }
    {
        SystemConfig c = cfg;
        c.emc.tlb_entries = 8;
        add("emc tlb=8 entries", c);
    }

    const std::vector<StatDump> res =
        runManyWarmShared(warm_cfg, mix, cfgs);
    const StatDump &base = res[0];

    std::printf("%-28s perf=%7.3f (no EMC baseline)\n", "baseline",
                1.0);
    for (std::size_t i = 0; i < names.size(); ++i) {
        const StatDump &d = res[i + 1];
        std::printf("%-28s perf=%7.3f emcfrac=%5.1f%% "
                    "chains=%6.0f lat_emc=%6.1f\n",
                    names[i].c_str(), relPerf(d, base, 4),
                    100 * d.get("emc.miss_fraction"),
                    d.get("emc.chains_accepted"),
                    d.get("lat.emc_total"));
    }
    note("");
    note("expected shape: the paper config is near the knee; removing"
         " the direct-DRAM bypass or shrinking the TLB hurts; extra"
         " contexts help under contention.");
    return 0;
}
