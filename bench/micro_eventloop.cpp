/**
 * @file
 * Event-loop fast-path microbench (BENCH_eventloop.json).
 *
 * Part 1 isolates the event queue: the same synthetic schedule —
 * shaped like the simulator's (short ring/LLC latencies, occasional
 * far-future DRAM completions) — is replayed through the former
 * std::multimap<Cycle, Event> representation and through the
 * CalendarQueue that replaced it, reporting simulated cycles/sec for
 * each.
 *
 * Part 2 times the whole simulator: one quad-core EMC+GHB System run,
 * with and without idle-cycle skipping (EMC_NO_CYCLE_SKIP), reporting
 * wall-clock and simulated cycles/sec.
 *
 * Usage: micro_eventloop [--smoke] [output.json]
 *   --smoke   tiny iteration counts (CI sanity run)
 *   default output path: BENCH_eventloop.json
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <map>
#include <string>
#include <thread>

#include "bench/bench_util.hh"
#include "sim/event_queue.hh"

namespace
{

using emc::Cycle;

struct Event
{
    std::uint8_t type;
    std::uint64_t token;
};

/**
 * Deterministic xorshift so both queue implementations see the exact
 * same schedule (no std::rand state, no libc variance).
 */
struct Rng
{
    std::uint64_t s = 0x9e3779b97f4a7c15ULL;

    std::uint64_t
    next()
    {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        return s;
    }
};

/** Delay distribution shaped like the simulator's schedules. */
Cycle
eventDelay(Rng &rng)
{
    const std::uint64_t r = rng.next() % 100;
    if (r < 55)
        return 1 + rng.next() % 4;       // ring hop / slice arrival
    if (r < 85)
        return 5 + rng.next() % 30;      // LLC lookup, MC retry
    if (r < 98)
        return 50 + rng.next() % 250;    // DRAM service
    return 1000 + rng.next() % 4000;     // beyond the wheel horizon
}

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/**
 * Drive @p cycles of a synthetic event loop: each delivered event
 * reschedules @p fanout successors, keeping a steady population, with
 * a fresh injection per cycle mimicking core requests.
 */
double
runMultimap(std::uint64_t cycles, unsigned fanout)
{
    std::multimap<Cycle, Event> q;
    Rng rng;
    std::uint64_t token = 0;
    std::uint64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (Cycle now = 1; now <= cycles; ++now) {
        q.emplace(now + eventDelay(rng), Event{0, token++});
        while (!q.empty() && q.begin()->first <= now) {
            const Event ev = q.begin()->second;
            q.erase(q.begin());
            sink += ev.token;
            // 3 offspring at 30% each = 0.9 expected children per
            // event: subcritical, so the injection keeps a steady
            // population (~10 deliveries/cycle) instead of exploding.
            for (unsigned f = 0; f < fanout; ++f) {
                if (rng.next() % 100 < 30) {
                    q.emplace(now + eventDelay(rng),
                              Event{0, token++});
                }
            }
        }
    }
    const auto t1 = std::chrono::steady_clock::now();
    // Keep the sink live so the loop isn't optimized away.
    if (sink == 0xdeadbeef)
        std::printf("!\n");
    return static_cast<double>(cycles) / seconds(t0, t1);
}

double
runCalendar(std::uint64_t cycles, unsigned fanout)
{
    emc::CalendarQueue<Event> q;
    Rng rng;
    std::uint64_t token = 0;
    std::uint64_t sink = 0;
    const auto t0 = std::chrono::steady_clock::now();
    for (Cycle now = 1; now <= cycles; ++now) {
        q.push(now + eventDelay(rng), Event{0, token++});
        Event ev;
        while (q.popUpTo(now, ev)) {
            sink += ev.token;
            for (unsigned f = 0; f < fanout; ++f) {
                if (rng.next() % 100 < 30)
                    q.push(now + eventDelay(rng), Event{0, token++});
            }
        }
    }
    const auto t1 = std::chrono::steady_clock::now();
    if (sink == 0xdeadbeef)
        std::printf("!\n");
    return static_cast<double>(cycles) / seconds(t0, t1);
}

/** One full-System run; @return simulated cycles per second. */
double
runSystem(bool cycle_skip, std::uint64_t uops, double *wall_out,
          std::uint64_t *cycles_out)
{
    if (cycle_skip)
        unsetenv("EMC_NO_CYCLE_SKIP");
    else
        setenv("EMC_NO_CYCLE_SKIP", "1", 1);
    emc::SystemConfig cfg;
    cfg.prefetch = emc::PrefetchConfig::kGhb;
    cfg.emc_enabled = true;
    cfg.target_uops = uops;
    cfg.warmup_uops = uops / 2;
    emc::System sys(cfg, emc::bench::homo("mcf"));
    const auto t0 = std::chrono::steady_clock::now();
    sys.run();
    const auto t1 = std::chrono::steady_clock::now();
    unsetenv("EMC_NO_CYCLE_SKIP");
    const double wall = seconds(t0, t1);
    if (wall_out)
        *wall_out = wall;
    if (cycles_out)
        *cycles_out = sys.cycles();
    return static_cast<double>(sys.cycles()) / wall;
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false;
    std::string out_path = "BENCH_eventloop.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else
            out_path = argv[i];
    }

    const std::uint64_t q_cycles = smoke ? 20'000 : 2'000'000;
    const unsigned fanout = 3;
    const std::uint64_t sys_uops = smoke ? 500 : 4000;

    std::printf("event queue microbench (%llu cycles, fanout %u)\n",
                static_cast<unsigned long long>(q_cycles), fanout);
    // Warm each implementation once, then measure.
    runMultimap(q_cycles / 10, fanout);
    const double mm = runMultimap(q_cycles, fanout);
    runCalendar(q_cycles / 10, fanout);
    const double cal = runCalendar(q_cycles, fanout);
    std::printf("  multimap:  %12.0f cycles/sec\n", mm);
    std::printf("  calendar:  %12.0f cycles/sec\n", cal);
    std::printf("  speedup:   %12.2fx\n", cal / mm);

    std::printf("full-system run (4x mcf, EMC+GHB, %llu uops/core)\n",
                static_cast<unsigned long long>(sys_uops));
    double wall_noskip = 0, wall_skip = 0;
    std::uint64_t cyc_noskip = 0, cyc_skip = 0;
    const double sys_noskip =
        runSystem(false, sys_uops, &wall_noskip, &cyc_noskip);
    const double sys_skip =
        runSystem(true, sys_uops, &wall_skip, &cyc_skip);
    std::printf("  no skip:   %12.0f sim-cycles/sec (%.2fs)\n",
                sys_noskip, wall_noskip);
    std::printf("  skip:      %12.0f sim-cycles/sec (%.2fs)\n",
                sys_skip, wall_skip);
    if (cyc_noskip != cyc_skip) {
        std::printf("ERROR: cycle-skip changed simulated time "
                    "(%llu vs %llu)\n",
                    static_cast<unsigned long long>(cyc_noskip),
                    static_cast<unsigned long long>(cyc_skip));
        return 1;
    }

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f) {
        std::perror("fopen");
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(f, "  \"host_hw_threads\": %u,\n",
                 std::thread::hardware_concurrency());
    std::fprintf(f, "  \"queue\": {\n");
    std::fprintf(f, "    \"cycles\": %llu,\n",
                 static_cast<unsigned long long>(q_cycles));
    std::fprintf(f, "    \"multimap_cycles_per_sec\": %.0f,\n", mm);
    std::fprintf(f, "    \"calendar_cycles_per_sec\": %.0f,\n", cal);
    std::fprintf(f, "    \"speedup\": %.3f\n", cal / mm);
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"system\": {\n");
    std::fprintf(f, "    \"uops_per_core\": %llu,\n",
                 static_cast<unsigned long long>(sys_uops));
    std::fprintf(f, "    \"sim_cycles\": %llu,\n",
                 static_cast<unsigned long long>(cyc_skip));
    std::fprintf(f, "    \"noskip_sim_cycles_per_sec\": %.0f,\n",
                 sys_noskip);
    std::fprintf(f, "    \"skip_sim_cycles_per_sec\": %.0f,\n",
                 sys_skip);
    std::fprintf(f, "    \"skip_speedup\": %.3f\n",
                 sys_skip / sys_noskip);
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
