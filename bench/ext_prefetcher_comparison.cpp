/**
 * @file
 * Extension bench: all prefetcher engines side by side (including the
 * Baer-Chen stride engine, an extra baseline beyond the paper's
 * three) on one streaming, one pointer-chasing and one mixed
 * workload — performance, accuracy, lateness, pollution and traffic.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace emc;
    using namespace emc::bench;

    banner("Extension", "prefetcher engine comparison",
           "stream/stride excel on regular access, none helps "
           "dependent misses (Figure 3's point)");

    const struct
    {
        const char *label;
        std::vector<std::string> mix;
    } workloads[] = {
        {"4x libquantum (streams)", homo("libquantum")},
        {"4x mcf (pointers)", homo("mcf")},
        {"H2 mix", quadWorkloads()[1]},
    };

    const PrefetchConfig pfs[] = {
        PrefetchConfig::kGhb, PrefetchConfig::kStream,
        PrefetchConfig::kStride, PrefetchConfig::kMarkovStream};

    // 5 independent runs per workload (baseline + 4 engines).
    std::vector<RunJob> jobs;
    for (const auto &w : workloads) {
        jobs.push_back({quadConfig(), w.mix});
        for (PrefetchConfig pf : pfs)
            jobs.push_back({quadConfig(pf), w.mix});
    }
    const std::vector<StatDump> res = runMany(jobs);

    std::size_t job = 0;
    for (const auto &w : workloads) {
        const StatDump &base = res[job++];
        const double traffic0 = base.get("traffic.total");
        std::printf("\n%s\n", w.label);
        std::printf("  %-14s %8s %9s %9s %8s %8s %9s\n", "engine",
                    "perf", "accuracy", "late", "pollut", "degree",
                    "traffic");
        for (PrefetchConfig pf : pfs) {
            const StatDump &d = res[job++];
            const double issued =
                std::max(1.0, d.get("prefetch.issued"));
            std::printf("  %-14s %8.3f %8.1f%% %8.1f%% %7.1f%% %8.0f"
                        " %+8.1f%%\n",
                        prefetchConfigName(pf), relPerf(d, base, 4),
                        100 * d.get("prefetch.accuracy"),
                        100 * d.get("prefetch.late") / issued,
                        100 * d.get("prefetch.polluted") / issued,
                        d.get("prefetch.degree"),
                        100 * (d.get("traffic.total") / traffic0 - 1));
        }
    }
    note("");
    note("expected shape: stream/stride help streams at high accuracy"
         " and modest traffic; nothing helps pure pointer chasing;"
         " Markov+stream buys coverage with the most traffic.");
    return 0;
}
