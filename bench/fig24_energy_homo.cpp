/**
 * @file
 * Figure 24: energy consumption for the homogeneous quad-core
 * workloads (four copies of each high-intensity benchmark), relative
 * to the no-EMC / no-prefetching baseline.
 *
 * Paper shape: EMC -9% average; prefetchers increase energy (traffic
 * +12%/+8%/+45% for GHB/stream/Markov+stream vs EMC's +3%).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace emc;
    using namespace emc::bench;

    banner("Figure 24", "energy, homogeneous workloads",
           "EMC -9% average; EMC traffic +3% vs prefetchers +8..45%");

    std::printf("%-12s %9s %9s %9s %9s\n", "benchmark", "+emc",
                "ghb", "stream", "markov");
    double emc_sum = 0;
    unsigned n = 0;
    for (const auto &app : highIntensityNames()) {
        const StatDump base = run(quadConfig(), homo(app));
        const double e0 = base.get("energy.total_mj");
        const StatDump emc =
            run(quadConfig(PrefetchConfig::kNone, true), homo(app));
        const StatDump ghb =
            run(quadConfig(PrefetchConfig::kGhb), homo(app));
        const StatDump stream =
            run(quadConfig(PrefetchConfig::kStream), homo(app));
        const StatDump markov =
            run(quadConfig(PrefetchConfig::kMarkovStream), homo(app));
        std::printf("%-12s %+8.1f%% %+8.1f%% %+8.1f%% %+8.1f%%\n",
                    app.c_str(),
                    100 * (emc.get("energy.total_mj") / e0 - 1),
                    100 * (ghb.get("energy.total_mj") / e0 - 1),
                    100 * (stream.get("energy.total_mj") / e0 - 1),
                    100 * (markov.get("energy.total_mj") / e0 - 1));
        emc_sum += emc.get("energy.total_mj") / e0 - 1;
        ++n;
    }
    std::printf("\naverage EMC energy change: %+.1f%% (paper: -9%%)\n",
                100 * emc_sum / n);
    return 0;
}
