/**
 * @file
 * Section 6.5: interconnect overhead of the EMC — the increase in
 * data/control ring messages when the EMC is enabled, and the EMC's
 * share of ring traffic.
 *
 * Paper shape: +33% data ring messages, +7% control ring requests on
 * average for H1-H10; EMC requests are 25% of data and 5% of control
 * messages; LLC latency rises slightly (~4%).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace emc;
    using namespace emc::bench;

    banner("Section 6.5", "ring-traffic overhead of the EMC",
           "+33% data / +7% control messages; EMC share 25% / 5%");

    std::printf("%-5s %10s %10s %10s %10s\n", "mix", "data+%",
                "ctrl+%", "emc-data%", "emc-ctrl%");
    double dsum = 0, csum = 0, dshare = 0, cshare = 0;
    unsigned n = 0;
    for (std::size_t h = 0; h < quadWorkloads().size(); ++h) {
        const auto &mix = quadWorkloads()[h];
        const StatDump b = run(quadConfig(), mix);
        const StatDump e = run(quadConfig(PrefetchConfig::kNone, true),
                               mix);
        const double d_incr =
            e.get("ring.data_msgs") / b.get("ring.data_msgs") - 1.0;
        const double c_incr = e.get("ring.control_msgs")
                                  / b.get("ring.control_msgs")
                              - 1.0;
        const double d_share =
            e.get("ring.data_emc_msgs") / e.get("ring.data_msgs");
        const double c_share = e.get("ring.control_emc_msgs")
                               / e.get("ring.control_msgs");
        std::printf("%-5s %+9.1f%% %+9.1f%% %9.1f%% %9.1f%%\n",
                    quadWorkloadName(h).c_str(), 100 * d_incr,
                    100 * c_incr, 100 * d_share, 100 * c_share);
        dsum += d_incr;
        csum += c_incr;
        dshare += d_share;
        cshare += c_share;
        ++n;
    }
    std::printf("\naverages: data %+0.1f%% (paper +33%%), control "
                "%+0.1f%% (paper +7%%), EMC share %0.1f%%/%0.1f%% "
                "(paper 25%%/5%%)\n",
                100 * dsum / n, 100 * csum / n, 100 * dshare / n,
                100 * cshare / n);
    return 0;
}
