/**
 * @file
 * Figure 3: percentage of dependent cache misses covered (turned into
 * hits) by the GHB, stream and Markov+stream prefetchers, plus the
 * bandwidth cost of each prefetcher.
 *
 * Paper shape: under 20% average coverage of dependent misses for all
 * three prefetchers, while they add 20%/22%/42% bandwidth.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace emc;
    using namespace emc::bench;

    banner("Figure 3", "dependent-miss coverage by prefetchers",
           "GHB/stream/Markov cover <20% of dependent misses on "
           "average; +20%/+22%/+42% bandwidth");

    const PrefetchConfig pfs[] = {PrefetchConfig::kGhb,
                                  PrefetchConfig::kStream,
                                  PrefetchConfig::kMarkovStream};

    // Dependent-miss-relevant subset (streamers have no dependent
    // misses to cover, as Figure 2 establishes).
    const std::vector<std::string> apps = {"mcf", "omnetpp", "soplex",
                                           "sphinx3"};

    std::printf("%-12s", "benchmark");
    for (PrefetchConfig pf : pfs)
        std::printf(" %14s", prefetchConfigName(pf));
    std::printf("\n");

    double bw_base_total = 0;
    double bw_pf_total[3] = {0, 0, 0};

    for (const auto &app : apps) {
        const StatDump base = run(quadConfig(), homo(app));
        bw_base_total += base.get("traffic.total");
        std::printf("%-12s", app.c_str());
        for (unsigned p = 0; p < 3; ++p) {
            const StatDump d = run(quadConfig(pfs[p]), homo(app));
            const double covered =
                d.get("llc.dep_misses_covered_by_pf");
            const double dep_total = d.get("llc.dep_misses") + covered;
            const double cov =
                dep_total > 0 ? covered / dep_total : 0.0;
            std::printf(" %13.1f%%", 100 * cov);
            bw_pf_total[p] += d.get("traffic.total");
        }
        std::printf("\n");
    }

    std::printf("\nbandwidth increase vs no-prefetch baseline:\n");
    for (unsigned p = 0; p < 3; ++p) {
        std::printf("  %-14s %+6.1f%%  (paper: %s)\n",
                    prefetchConfigName(pfs[p]),
                    100 * (bw_pf_total[p] / bw_base_total - 1.0),
                    p == 0 ? "+20%" : (p == 1 ? "+22%" : "+42%"));
    }
    note("");
    note("expected shape: low dependent-miss coverage across all three"
         " prefetchers; Markov+stream costs the most bandwidth.");
    return 0;
}
