/**
 * @file
 * Sharded-sweep + checkpoint-store microbench (BENCH_sweep.json).
 *
 * Part 1 measures what the multi-process engine costs and proves what
 * it preserves: the same config sweep runs on the in-process thread
 * pool, then sharded across 1 worker process (isolating pure
 * coordinator overhead: fork + pipe framing + JSONL parse), then
 * across 2 workers. All three must produce bit-identical stats.
 *
 * Part 2 measures the content-addressed store on its target workload:
 * K config points forked from one warm image, each saving a full
 * checkpoint shortly after the fork (the crash-resume autosave
 * pattern). Storing K near-identical ~100 MB images must cost far
 * less than K full files — the ISSUE target is a >=10x reduction.
 *
 * Usage: micro_sweep [--smoke] [output.json]
 *   --smoke   tiny run lengths (CI sanity run)
 *   default output path: BENCH_sweep.json
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.hh"
#include "ckpt/ckpt.hh"
#include "ckpt/store.hh"
#include "sim/system.hh"

namespace
{

using namespace emc;

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** Exact (bitwise) stat-dump equality; prints the first mismatch. */
bool
sameStats(const StatDump &a, const StatDump &b, const char *what)
{
    if (a.all().size() != b.all().size()) {
        std::printf("ERROR: %s: %zu vs %zu stats\n", what,
                    a.all().size(), b.all().size());
        return false;
    }
    auto ia = a.all().begin();
    auto ib = b.all().begin();
    for (; ia != a.all().end(); ++ia, ++ib) {
        if (ia->first != ib->first || ia->second != ib->second) {
            std::printf("ERROR: %s: %s=%.17g vs %s=%.17g\n", what,
                        ia->first.c_str(), ia->second,
                        ib->first.c_str(), ib->second);
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace emc::bench;

    bool smoke = false;
    std::string out_path = "BENCH_sweep.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else
            out_path = argv[i];
    }

    const std::uint64_t uops = smoke ? 2000 : 20000;
    const std::vector<std::string> mix = homo("mcf");

    // ---- Part 1: sharded vs threaded engine -----------------------
    SystemConfig base;
    base.target_uops = uops;
    base.warmup_uops = uops / 2;

    std::vector<RunJob> jobs;
    for (bool emc_on : {false, true}) {
        for (PrefetchConfig pf :
             {PrefetchConfig::kNone, PrefetchConfig::kGhb}) {
            SystemConfig c = base;
            c.emc_enabled = emc_on;
            c.prefetch = pf;
            jobs.push_back({c, mix});
        }
    }

    std::printf("sweep engines (%zu config points, 4x mcf, %llu "
                "uops/core)\n",
                jobs.size(), static_cast<unsigned long long>(uops));
    // One compute thread in every mode so the comparison isolates the
    // engine, not the scheduler.
    setenv("EMC_BENCH_THREADS", "1", 1);

    unsetenv("EMC_BENCH_PROCS");
    const auto t0 = std::chrono::steady_clock::now();
    const std::vector<StatDump> threaded = runMany(jobs);
    const auto t1 = std::chrono::steady_clock::now();

    setenv("EMC_BENCH_PROCS", "1", 1);
    const auto p0 = std::chrono::steady_clock::now();
    const std::vector<StatDump> sharded1 = runMany(jobs);
    const auto p1 = std::chrono::steady_clock::now();

    setenv("EMC_BENCH_PROCS", "2", 1);
    const auto q0 = std::chrono::steady_clock::now();
    const std::vector<StatDump> sharded2 = runMany(jobs);
    const auto q1 = std::chrono::steady_clock::now();
    unsetenv("EMC_BENCH_PROCS");
    unsetenv("EMC_BENCH_THREADS");

    for (std::size_t i = 0; i < jobs.size(); ++i) {
        const std::string what = "job " + std::to_string(i);
        if (!sameStats(threaded[i], sharded1[i],
                       (what + ", threads vs 1 proc").c_str())
            || !sameStats(threaded[i], sharded2[i],
                          (what + ", threads vs 2 procs").c_str())) {
            return 1;
        }
    }

    const double threaded_s = seconds(t0, t1);
    const double sharded1_s = seconds(p0, p1);
    const double sharded2_s = seconds(q0, q1);
    const unsigned hw = std::thread::hardware_concurrency();
    std::printf("  threads:  %7.2fs (in-process pool)\n", threaded_s);
    std::printf("  1 proc:   %7.2fs (coordinator overhead %+.2fs)\n",
                sharded1_s, sharded1_s - threaded_s);
    std::printf("  2 procs:  %7.2fs (%u hardware threads on this "
                "host)\n",
                sharded2_s, hw);
    std::printf("  stats bit-identical across all three engines\n");

    // ---- Part 2: content-addressed store on forked images ---------
    SystemConfig warm_cfg;
    warm_cfg.target_uops = uops;
    warm_cfg.warmup_uops = uops / 2;
    const std::vector<std::uint8_t> warm =
        System(warm_cfg, mix).warmupCheckpointBytes();

    std::vector<SystemConfig> points;
    for (bool emc_on : {false, true}) {
        for (PrefetchConfig pf :
             {PrefetchConfig::kNone, PrefetchConfig::kGhb,
              PrefetchConfig::kStream}) {
            SystemConfig c = warm_cfg;
            c.emc_enabled = emc_on;
            c.prefetch = pf;
            c.warmup_uops = 0;
            points.push_back(c);
        }
    }
    // Each point runs a short detailed stretch past the fork before
    // its first autosave lands — the images diverge where the configs
    // make the simulations diverge, and nowhere else.
    const int divergence = smoke ? 200 : 2000;

    const std::string store_dir = out_path + ".store";
    std::filesystem::remove_all(store_dir);
    ckpt::Store store(store_dir);

    std::printf("delta store (%zu config points forked from one warm "
                "image)\n",
                points.size());
    std::uint64_t logical = 0;
    std::size_t image_bytes = 0;
    double restore_s = 0.0;
    const auto s0 = std::chrono::steady_clock::now();
    for (std::size_t k = 0; k < points.size(); ++k) {
        System sys(points[k], mix);
        const auto r0 = std::chrono::steady_clock::now();
        sys.restoreCheckpointBytes(warm);
        restore_s += seconds(r0, std::chrono::steady_clock::now());
        for (int t = 0; t < divergence; ++t)
            sys.tickOnce();
        const std::vector<std::uint8_t> img =
            sys.saveCheckpointBytes(ckpt::Level::kFull);
        image_bytes = img.size();
        logical += img.size();
        const ckpt::StorePut put =
            store.put("point" + std::to_string(k), img);
        std::printf("  point %zu: %10zu bytes, %6.1f%% reused\n", k,
                    img.size(),
                    100.0 * static_cast<double>(put.reused_bytes)
                        / static_cast<double>(put.image_bytes));
    }
    const auto s1 = std::chrono::steady_clock::now();

    // Reassembly must be exact for every point.
    for (std::size_t k = 0; k < points.size(); ++k) {
        System sys(points[k], mix);
        sys.restoreCheckpointBytes(
            store.get("point" + std::to_string(k)));
    }

    const ckpt::StoreStats st = store.stats();
    const double ratio = static_cast<double>(logical)
                         / static_cast<double>(st.storedBytes());
    std::filesystem::remove_all(store_dir);

    std::printf("  logical %llu bytes, stored %llu bytes: %.1fx "
                "reduction (target >=10x)\n",
                static_cast<unsigned long long>(logical),
                static_cast<unsigned long long>(st.storedBytes()),
                ratio);
    std::printf("  restore: %.3fs per %zu-byte image (seed build "
                "recorded 1.785s)\n",
                restore_s / static_cast<double>(points.size()),
                warm.size());
    if (!smoke && ratio < 10.0)
        std::printf("  WARNING: reduction below the 10x target\n");

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f) {
        std::perror("fopen");
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(f, "  \"uops_per_core\": %llu,\n",
                 static_cast<unsigned long long>(uops));
    std::fprintf(f, "  \"engines\": {\n");
    std::fprintf(f, "    \"config_points\": %zu,\n", jobs.size());
    std::fprintf(f, "    \"host_hw_threads\": %u,\n", hw);
    std::fprintf(f, "    \"threaded_seconds\": %.3f,\n", threaded_s);
    std::fprintf(f, "    \"sharded_1proc_seconds\": %.3f,\n",
                 sharded1_s);
    std::fprintf(f, "    \"sharded_2proc_seconds\": %.3f,\n",
                 sharded2_s);
    std::fprintf(f, "    \"coordinator_overhead_seconds\": %.3f,\n",
                 sharded1_s - threaded_s);
    std::fprintf(f, "    \"stats_identical\": true\n");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"delta_store\": {\n");
    std::fprintf(f, "    \"config_points\": %zu,\n", points.size());
    std::fprintf(f, "    \"divergence_cycles\": %d,\n", divergence);
    std::fprintf(f, "    \"image_bytes\": %zu,\n", image_bytes);
    std::fprintf(f, "    \"logical_bytes\": %llu,\n",
                 static_cast<unsigned long long>(logical));
    std::fprintf(f, "    \"stored_bytes\": %llu,\n",
                 static_cast<unsigned long long>(st.storedBytes()));
    std::fprintf(f, "    \"reduction\": %.3f,\n", ratio);
    std::fprintf(f, "    \"put_seconds\": %.3f,\n", seconds(s0, s1));
    std::fprintf(f, "    \"roundtrip_exact\": true\n");
    std::fprintf(f, "  },\n");
    // The single-pass loader rework (serial.hh / ckpt.cc / restore
    // path) that this sweep work leans on; the before number is the
    // seed BENCH_ckpt.json recording on this host.
    std::fprintf(f, "  \"restore\": {\n");
    std::fprintf(f, "    \"image_bytes\": %zu,\n", warm.size());
    std::fprintf(f, "    \"seconds_before_seed_recorded\": 1.785,\n");
    std::fprintf(f, "    \"seconds\": %.3f\n",
                 restore_s / static_cast<double>(points.size()));
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
