/**
 * @file
 * Figure 20: performance sensitivity to DRAM channels and ranks, from
 * 1 channel / 1 rank up to 4 channels / 4 ranks, with and without the
 * EMC (all normalized to the 1C1R no-EMC baseline).
 *
 * Paper shape: performance rises steadily with banks/bandwidth; the
 * EMC's relative benefit grows while the system is contended and
 * shrinks (but stays positive, ~11% at 4C4R) when bandwidth is ample
 * — the gain is not obtainable by just adding banks.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace emc;
    using namespace emc::bench;

    banner("Figure 20", "sensitivity to channels x ranks",
           "EMC benefit persists across DRAM configs (+11% even at "
           "4C4R)");

    struct Point
    {
        unsigned channels, ranks;
    };
    const Point points[] = {{1, 1}, {1, 2}, {2, 1}, {2, 2},
                            {2, 4}, {4, 2}, {4, 4}};

    // A contended, dependent-miss-heavy mix (H4).
    const auto &mix = quadWorkloads()[3];

    // Each (dram config, emc) pair is an independent run.
    std::vector<RunJob> jobs;
    for (const Point &pt : points) {
        SystemConfig b = quadConfig();
        b.dram.channels = pt.channels;
        b.dram.ranks_per_channel = pt.ranks;
        b.mc_queue_entries = 64 * pt.channels;
        SystemConfig e = b;
        e.emc_enabled = true;
        jobs.push_back({b, mix});
        jobs.push_back({e, mix});
    }
    const std::vector<StatDump> res = runMany(jobs);

    std::printf("%-8s %10s %10s %10s\n", "config", "base",
                "+emc", "emc-gain");
    const StatDump &base_1c1r = res[0];
    for (std::size_t p = 0; p < std::size(points); ++p) {
        const StatDump &db = res[2 * p];
        const StatDump &de = res[2 * p + 1];
        const double pb = relPerf(db, base_1c1r, 4);
        const double pe = relPerf(de, base_1c1r, 4);
        std::printf("%uC%uR     %10.3f %10.3f %+9.1f%%\n",
                    points[p].channels, points[p].ranks, pb, pe,
                    100 * (pe / pb - 1.0));
    }
    note("");
    note("expected shape: monotone performance growth with DRAM"
         " resources; the EMC gain is largest in the contended"
         " low-bank configs and remains positive at 4C4R.");
    return 0;
}
