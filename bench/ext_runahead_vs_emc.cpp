/**
 * @file
 * Extension bench (beyond the paper's figures): runahead execution
 * [38] versus the EMC. The paper's related-work section argues that
 * pre-execution techniques generate *independent* misses and must
 * discard dependent ones — the EMC exists for exactly the misses
 * runahead drops. This bench quantifies that on both a pointer-chaser
 * (where runahead has nothing useful to prefetch) and a streaming
 * benchmark (runahead's best case).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace emc;
    using namespace emc::bench;

    banner("Extension", "runahead execution vs the EMC",
           "runahead targets independent misses and discards "
           "dependent ones (paper Section 2)");

    const struct
    {
        const char *label;
        std::vector<std::string> mix;
    } workloads[] = {
        {"4x mcf (dependent)", homo("mcf")},
        {"4x libquantum (streams)", homo("libquantum")},
        {"H4 mix", quadWorkloads()[3]},
    };

    for (const auto &w : workloads) {
        const StatDump base = run(quadConfig(), w.mix);
        std::printf("\n%s\n", w.label);
        std::printf("  %-14s %9s %12s %12s\n", "config", "perf",
                    "ra-prefetch", "ra-dropped");

        auto show = [&](const char *name, bool runahead, bool emc) {
            SystemConfig cfg = quadConfig(PrefetchConfig::kNone, emc);
            cfg.core.runahead_enabled = runahead;
            System sys(cfg, w.mix);
            sys.run();
            const StatDump d = sys.dump();
            double ra_pf = 0, ra_drop = 0;
            for (unsigned i = 0; i < 4; ++i) {
                ra_pf += static_cast<double>(
                    sys.core(i).stats().runahead_prefetches);
                ra_drop += static_cast<double>(
                    sys.core(i).stats().runahead_dropped_loads);
            }
            std::printf("  %-14s %9.3f %12.0f %12.0f\n", name,
                        relPerf(d, base, 4), ra_pf, ra_drop);
        };
        std::printf("  %-14s %9.3f\n", "base", 1.0);
        show("runahead", true, false);
        show("emc", false, true);
        show("runahead+emc", true, true);
    }
    note("");
    note("expected shape: runahead drops a flood of dependent loads on"
         " mcf (and its useless prefetches cost bandwidth), while the"
         " EMC serves exactly those loads; on streaming workloads the"
         " two mechanisms do not conflict.");
    return 0;
}
