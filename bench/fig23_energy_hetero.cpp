/**
 * @file
 * Figure 23: chip + DRAM energy consumption for H1-H10, as percentage
 * difference from the no-EMC / no-prefetching baseline, across the
 * eight configurations.
 *
 * Paper shape: the EMC reduces energy ~11% on average (faster
 * execution cuts static energy; fewer row conflicts cut DRAM dynamic
 * energy); prefetchers *increase* energy, Markov+stream the most
 * (memory traffic +52%).
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace emc;
    using namespace emc::bench;

    banner("Figure 23", "energy consumption, H1-H10",
           "EMC -11% average; prefetchers increase energy");

    const PrefetchConfig pfs[] = {
        PrefetchConfig::kNone, PrefetchConfig::kGhb,
        PrefetchConfig::kStream, PrefetchConfig::kMarkovStream};

    std::printf("%-5s", "mix");
    for (PrefetchConfig pf : pfs)
        std::printf(" %9s %9s", prefetchConfigName(pf), "+emc");
    std::printf("   (energy vs no-PF baseline)\n");

    double emc_sum = 0, traffic_base = 0, traffic_markov = 0,
           traffic_emc = 0;
    unsigned n = 0;
    for (std::size_t h = 0; h < quadWorkloads().size(); ++h) {
        const auto &mix = quadWorkloads()[h];
        const StatDump base = run(quadConfig(), mix);
        const double e0 = base.get("energy.total_mj");
        traffic_base += base.get("traffic.total");
        std::printf("%-5s", quadWorkloadName(h).c_str());
        for (unsigned p = 0; p < 4; ++p) {
            const StatDump noemc =
                p == 0 ? base : run(quadConfig(pfs[p], false), mix);
            const StatDump emc = run(quadConfig(pfs[p], true), mix);
            std::printf(" %+8.1f%% %+8.1f%%",
                        100 * (noemc.get("energy.total_mj") / e0 - 1),
                        100 * (emc.get("energy.total_mj") / e0 - 1));
            if (p == 0) {
                emc_sum += emc.get("energy.total_mj") / e0 - 1;
                traffic_emc += emc.get("traffic.total");
            }
            if (p == 3)
                traffic_markov += noemc.get("traffic.total");
        }
        std::printf("\n");
        ++n;
    }
    std::printf("\naverage EMC energy change: %+.1f%% (paper: -11%%)\n",
                100 * emc_sum / n);
    std::printf("memory traffic: EMC %+.1f%% vs Markov+stream %+.1f%% "
                "(paper: +8%% vs +52%%)\n",
                100 * (traffic_emc / traffic_base - 1),
                100 * (traffic_markov / traffic_base - 1));
    return 0;
}
