/**
 * @file
 * Figure 17: hit rate of the EMC's 4 KB data cache per workload.
 *
 * Paper shape: varies widely by workload (H1 much lower than H4); a
 * higher hit rate means dependence chains touch data that recently
 * crossed from DRAM, which shortens chain execution.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace emc;
    using namespace emc::bench;

    banner("Figure 17", "EMC data cache hit rate",
           "workload-dependent; correlates with EMC benefit");

    std::printf("%-5s %10s %10s %10s %10s\n", "mix", "hits", "misses",
                "hit-rate", "lsq-fwd");
    for (std::size_t h = 0; h < quadWorkloads().size(); ++h) {
        const StatDump d = run(quadConfig(PrefetchConfig::kNone, true),
                               quadWorkloads()[h]);
        std::printf("%-5s %10.0f %10.0f %9.1f%% %10.0f\n",
                    quadWorkloadName(h).c_str(),
                    d.get("emc.dcache_hits"),
                    d.get("emc.dcache_misses"),
                    100 * d.get("emc.dcache_hit_rate"),
                    d.get("emc.lsq_forwards"));
    }
    note("");
    note("expected shape: hit rates vary across mixes; pointer chases"
         " over huge footprints mostly miss (every hop is a fresh"
         " line), spill/fill traffic hits.");
    return 0;
}
