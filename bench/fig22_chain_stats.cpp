/**
 * @file
 * Figure 22 + Section 6.5: dependence-chain characteristics — average
 * uops per chain, live-ins per chain, live-outs per chain, and the
 * interconnect transfer sizes they imply.
 *
 * Paper shape: chains average under 10 uops, ~6.4 live-ins and ~8.8
 * live-outs — 1-2 cache lines out, about one line back.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace emc;
    using namespace emc::bench;

    banner("Figure 22", "uops / live-ins / live-outs per chain",
           "chains < 10 uops avg; 6.4 live-ins; 8.8 live-outs");

    std::printf("%-5s %8s %9s %10s %10s %10s\n", "mix", "chains",
                "uops/ch", "livein/ch", "liveout/ch", "xfer(B)");
    double uops_sum = 0, li_sum = 0, lo_sum = 0;
    unsigned n = 0;
    for (std::size_t h = 0; h < quadWorkloads().size(); ++h) {
        const StatDump d = run(quadConfig(PrefetchConfig::kNone, true),
                               quadWorkloads()[h]);
        const double chains = d.get("emc.chains_accepted");
        if (chains <= 0) {
            std::printf("%-5s %8.0f\n", quadWorkloadName(h).c_str(),
                        chains);
            continue;
        }
        const double upc = d.get("emc.uops_per_chain");
        double li = 0, completed_chains = 0;
        for (int i = 0; i < 4; ++i) {
            const std::string p = "core" + std::to_string(i) + ".";
            const double c = d.get(p + "chains_generated");
            li += d.get(p + "chain_live_ins_avg") * c;
            completed_chains += c;
        }
        li = completed_chains > 0 ? li / completed_chains : 0;
        const double lo = d.get("emc.live_outs")
                          / std::max(1.0, d.get("emc.chains_completed"));
        const double xfer = 6 * upc + 8 * li;  // uops at 6 B + live-ins
        std::printf("%-5s %8.0f %9.1f %10.1f %10.1f %10.1f\n",
                    quadWorkloadName(h).c_str(), chains, upc, li, lo,
                    xfer);
        uops_sum += upc;
        li_sum += li;
        lo_sum += lo;
        ++n;
    }
    if (n) {
        std::printf("\naverages: %.1f uops (paper <10), %.1f live-ins "
                    "(paper 6.4), %.1f live-outs (paper 8.8)\n",
                    uops_sum / n, li_sum / n, lo_sum / n);
    }
    note("expected shape: chain transfer fits in 1-2 cache lines;"
         " live-outs fit in about one line.");
    return 0;
}
