/**
 * @file
 * Figure 12: quad-core performance on the heterogeneous workloads
 * H1-H10 across eight configurations: {no-PF, GHB, stream,
 * Markov+stream} x {without, with EMC}, normalized to the
 * no-prefetch baseline of each workload.
 *
 * Paper shape: the EMC gains on average +15% over no-prefetching,
 * +13% over GHB, +10% over stream and +11% over Markov+stream;
 * workloads containing mcf/omnetpp gain the most, lbm-heavy mixes the
 * least.
 */

#include <cmath>
#include <cstdio>

#include "bench/bench_util.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace emc;
    using namespace emc::bench;

    banner("Figure 12", "quad-core performance, H1-H10",
           "EMC: +15%/+13%/+10%/+11% over noPF/GHB/stream/Markov");

    const PrefetchConfig pfs[] = {
        PrefetchConfig::kNone, PrefetchConfig::kGhb,
        PrefetchConfig::kStream, PrefetchConfig::kMarkovStream};

    std::printf("%-5s", "mix");
    for (PrefetchConfig pf : pfs) {
        std::printf(" %9s %9s", prefetchConfigName(pf), "+emc");
    }
    std::printf("\n");

    // Every (mix, prefetcher, emc) run is independent: 8 jobs per
    // mix, fanned across threads, printed in job order.
    std::vector<RunJob> jobs;
    for (std::size_t h = 0; h < quadWorkloads().size(); ++h) {
        const auto &mix = quadWorkloads()[h];
        for (unsigned p = 0; p < 4; ++p)
            jobs.push_back({quadConfig(pfs[p], false), mix});
        for (unsigned p = 0; p < 4; ++p)
            jobs.push_back({quadConfig(pfs[p], true), mix});
    }
    const std::vector<StatDump> res = runMany(jobs);

    // Geometric means of the EMC gain per prefetcher config.
    double gain_log[4] = {0, 0, 0, 0};
    unsigned count = 0;

    for (std::size_t h = 0; h < quadWorkloads().size(); ++h) {
        const StatDump *mix_res = &res[8 * h];
        const StatDump &base = mix_res[0];
        std::printf("%-5s", quadWorkloadName(h).c_str());
        for (unsigned p = 0; p < 4; ++p) {
            const StatDump &noemc = mix_res[p];
            const StatDump &emc = mix_res[4 + p];
            const double perf_noemc = relPerf(noemc, base, 4);
            const double perf_emc = relPerf(emc, base, 4);
            std::printf(" %9.3f %9.3f", perf_noemc, perf_emc);
            gain_log[p] += std::log(perf_emc / perf_noemc);
        }
        std::printf("\n");
        ++count;
    }

    std::printf("\naverage EMC gain over each baseline:\n");
    const char *paper[] = {"+15%", "+13%", "+10%", "+11%"};
    for (unsigned p = 0; p < 4; ++p) {
        std::printf("  over %-14s %+6.1f%%   (paper: %s)\n",
                    prefetchConfigName(pfs[p]),
                    100 * (std::exp(gain_log[p] / count) - 1.0),
                    paper[p]);
    }
    note("");
    note("expected shape: positive EMC gains, largest for mixes with"
         " mcf/omnetpp (H3-H6, H8, H9), smallest for lbm-heavy mixes"
         " (H1, H5 contain lbm).");
    return 0;
}
