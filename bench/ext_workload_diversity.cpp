/**
 * @file
 * Extension: workload-diversity study over the irregular kernel
 * library (BENCH_diversity.json).
 *
 * The paper evaluates the EMC on SPEC-style pointer chasing; this
 * bench asks how it fares on three other irregular-kernel families
 * (src/workload/irregular.cc):
 *
 *   graph  — CSR frontier walks (bfs, pagerank)
 *   hash   — hash-join / B-tree bucket-chain probes (hashjoin, btree)
 *   gather — embedding-row gathers through a skewed index (embed)
 *
 * For each profile it runs a single-core system without and with the
 * EMC and reports the dependent-miss fraction, the average dependent
 * cache-miss latency each side observes (core-issued vs EMC-issued),
 * the fraction of dependent misses the EMC takes over, and the
 * relative performance. Results land in BENCH_diversity.json so CI
 * can assert every family is covered.
 *
 * Usage: ext_workload_diversity [output.json]
 *   default output path: BENCH_diversity.json
 */

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "workload/profile.hh"

namespace
{

/** Kernel family a profile belongs to (matches its dominant mix). */
const char *
familyOf(const std::string &name)
{
    if (name == "bfs" || name == "pagerank")
        return "graph";
    if (name == "hashjoin" || name == "btree")
        return "hash";
    return "gather";
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace emc;
    using namespace emc::bench;

    const std::string out_path =
        argc > 1 ? argv[1] : "BENCH_diversity.json";

    banner("Extension", "EMC across irregular-workload families",
           "dependent-miss acceleration beyond SPEC pointer chasing");

    struct Row
    {
        std::string name;
        std::string family;
        double dep_frac;       ///< dependent-miss fraction (baseline)
        double lat_base;       ///< avg dep-miss latency, no EMC
        double lat_core;       ///< avg core-issued latency, EMC run
        double lat_emc;        ///< avg EMC-issued latency, EMC run
        double emc_share;      ///< fraction of dep misses EMC issues
        double speedup;        ///< relPerf(EMC) / relPerf(base)
        double pred_acc;       ///< bypass predictor accuracy (EMC run)
        double pred_cov;       ///< bypass predictor coverage (EMC run)
        double pred_trainings; ///< LLC outcomes the predictor saw
    };
    std::vector<Row> rows;

    std::printf("%-9s %-7s %8s %10s %10s %8s %8s\n", "profile",
                "family", "dep%", "base(cyc)", "emc(cyc)", "emcshare",
                "perf");
    for (const std::string &name : irregularNames()) {
        const std::vector<std::string> mix = {name};
        SystemConfig base_cfg = quadConfig(PrefetchConfig::kNone, false);
        base_cfg.num_cores = 1;
        SystemConfig emc_cfg = quadConfig(PrefetchConfig::kNone, true);
        emc_cfg.num_cores = 1;
        const StatDump base = run(base_cfg, mix);
        const StatDump with = run(emc_cfg, mix);

        Row r;
        r.name = name;
        r.family = familyOf(name);
        r.dep_frac = base.get("core0.dep_miss_frac");
        r.lat_base = base.get("lat.core_total");
        r.lat_core = with.get("lat.core_total");
        r.lat_emc = with.get("lat.emc_total");
        const double cs = with.get("lat.core_samples");
        const double es = with.get("lat.emc_samples");
        r.emc_share = (cs + es) > 0 ? es / (cs + es) : 0;
        r.speedup = relPerf(with, base, 1);
        r.pred_acc = with.get("pred.emc.accuracy");
        r.pred_cov = with.get("pred.emc.coverage");
        r.pred_trainings = with.get("pred.emc.trainings");
        rows.push_back(r);

        std::printf("%-9s %-7s %7.1f%% %10.1f %10.1f %7.1f%% %8.3f\n",
                    r.name.c_str(), r.family.c_str(), 100 * r.dep_frac,
                    r.lat_base, r.lat_emc, 100 * r.emc_share,
                    r.speedup);
    }

    note("");
    note("dep%     share of LLC misses whose address depends on a");
    note("         prior miss (the chains the EMC targets)");
    note("emc(cyc) latency of EMC-issued dependent misses; compare");
    note("         base(cyc), the same misses issued from the core");
    note("");
    note("bypass-predictor view (pred.emc.*, DESIGN.md §13):");
    for (const Row &r : rows) {
        std::printf("  %-9s accuracy %5.1f%%  coverage %5.1f%%  "
                    "trainings %8.0f\n",
                    r.name.c_str(), 100 * r.pred_acc, 100 * r.pred_cov,
                    r.pred_trainings);
    }
    note("a zero emcshare with healthy predictor coverage (embed)");
    note("means the misses were predictable but the chains halt at");
    note("the EMC before issuing a load: the gather's scattered");
    note("pages never fit the 32-entry EMC TLB (emc.halts_tlb), so");
    note("every chain bounces back to the core on translation");
    std::vector<std::pair<std::string, std::vector<double>>> chart;
    for (const Row &r : rows)
        chart.push_back({r.name, {r.lat_base, r.lat_emc}});
    groupedChart({"core-issued", "emc-issued"}, chart);

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f) {
        std::perror("fopen");
        return 1;
    }
    std::fprintf(f, "{\n  \"families\": [\n");
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const Row &r = rows[i];
        std::fprintf(f,
                     "    {\"profile\": \"%s\", \"family\": \"%s\", "
                     "\"dep_miss_frac\": %.4f, "
                     "\"lat_base\": %.2f, \"lat_core\": %.2f, "
                     "\"lat_emc\": %.2f, \"emc_share\": %.4f, "
                     "\"rel_perf\": %.4f, "
                     "\"pred_accuracy\": %.4f, "
                     "\"pred_coverage\": %.4f, "
                     "\"pred_trainings\": %.0f}%s\n",
                     r.name.c_str(), r.family.c_str(), r.dep_frac,
                     r.lat_base, r.lat_core, r.lat_emc, r.emc_share,
                     r.speedup, r.pred_acc, r.pred_cov,
                     r.pred_trainings, i + 1 < rows.size() ? "," : "");
    }
    std::fprintf(f, "  ]\n}\n");
    std::fclose(f);
    std::printf("\nwrote %s\n", out_path.c_str());
    return 0;
}
