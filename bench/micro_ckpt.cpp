/**
 * @file
 * Checkpoint/restore microbench (BENCH_ckpt.json).
 *
 * Part 1 proves the full-level roundtrip on a fig13-class config:
 * run straight through, then run again with a checkpoint scheduled
 * mid-run, restore it into a fresh System and run to the end. All
 * three stat dumps must be identical to the last bit (exit 1 if not),
 * and the save / restore wall costs and image size are recorded.
 *
 * Part 2 measures the warm-once-fork-many win: N ablation-style
 * config points run once with the shared warmup image and once with
 * per-job warmup (EMC_CKPT_SHARED_WARMUP=0), pinned to one worker
 * thread so the wall-clock difference is the redundant warmup work
 * and not scheduling luck. Both modes must produce identical stats.
 *
 * Usage: micro_ckpt [--smoke] [output.json]
 *   --smoke   tiny run lengths (CI sanity run)
 *   default output path: BENCH_ckpt.json
 */

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.hh"
#include "ckpt/ckpt.hh"

namespace
{

using namespace emc;

double
seconds(std::chrono::steady_clock::time_point a,
        std::chrono::steady_clock::time_point b)
{
    return std::chrono::duration<double>(b - a).count();
}

/** Exact (bitwise) stat-dump equality; prints the first mismatch. */
bool
sameStats(const StatDump &a, const StatDump &b, const char *what)
{
    if (a.all().size() != b.all().size()) {
        std::printf("ERROR: %s: %zu vs %zu stats\n", what,
                    a.all().size(), b.all().size());
        return false;
    }
    auto ia = a.all().begin();
    auto ib = b.all().begin();
    for (; ia != a.all().end(); ++ia, ++ib) {
        if (ia->first != ib->first || ia->second != ib->second) {
            std::printf("ERROR: %s: %s=%.17g vs %s=%.17g\n", what,
                        ia->first.c_str(), ia->second,
                        ib->first.c_str(), ib->second);
            return false;
        }
    }
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace emc::bench;

    bool smoke = false;
    std::string out_path = "BENCH_ckpt.json";
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else
            out_path = argv[i];
    }

    const std::uint64_t uops = smoke ? 2000 : 20000;

    SystemConfig cfg;
    cfg.prefetch = PrefetchConfig::kGhb;
    cfg.emc_enabled = true;
    cfg.target_uops = uops;
    cfg.warmup_uops = uops / 2;
    const std::vector<std::string> mix = homo("mcf");

    // ---- Part 1: full-level roundtrip identity + cost -------------
    std::printf("full-level roundtrip (4x mcf, EMC+GHB, %llu "
                "uops/core)\n",
                static_cast<unsigned long long>(uops));
    System straight(cfg, mix);
    straight.run();
    const StatDump d_straight = straight.dump();
    const Cycle mid = straight.cycles() / 2;

    const std::string ckpt_path = out_path + ".roundtrip.ckpt";
    System saver(cfg, mix);
    saver.scheduleCheckpoint(ckpt_path, mid);
    saver.run();
    const StatDump d_saver = saver.dump();

    System restored(cfg, mix);
    const auto t0 = std::chrono::steady_clock::now();
    restored.restoreCheckpoint(ckpt_path);
    const auto t1 = std::chrono::steady_clock::now();
    restored.run();
    const StatDump d_restored = restored.dump();

    const double restore_s = seconds(t0, t1);
    const std::size_t full_bytes = ckpt::readFile(ckpt_path).size();
    std::remove(ckpt_path.c_str());

    if (!sameStats(d_straight, d_saver, "saving run vs straight")
        || !sameStats(d_straight, d_restored,
                      "restored run vs straight")) {
        return 1;
    }
    std::printf("  image: %zu bytes (saved at cycle %llu), restore "
                "%.1f ms, stats identical\n",
                full_bytes, static_cast<unsigned long long>(mid),
                1e3 * restore_s);

    // ---- Part 2: shared vs per-job warmup -------------------------
    SystemConfig warm_cfg;
    warm_cfg.target_uops = uops;
    warm_cfg.warmup_uops = uops / 2;

    std::vector<SystemConfig> cfgs;
    cfgs.push_back(warm_cfg);
    for (bool emc_on : {true, false}) {
        for (PrefetchConfig pf :
             {PrefetchConfig::kGhb, PrefetchConfig::kStream}) {
            SystemConfig c = warm_cfg;
            c.emc_enabled = emc_on;
            c.prefetch = pf;
            cfgs.push_back(c);
        }
    }

    std::printf("shared-warmup sweep (%zu config points, 1 thread)\n",
                cfgs.size());
    setenv("EMC_BENCH_THREADS", "1", 1);

    setenv("EMC_CKPT_SHARED_WARMUP", "1", 1);
    const auto s0 = std::chrono::steady_clock::now();
    const std::vector<StatDump> shared =
        runManyWarmShared(warm_cfg, mix, cfgs);
    const auto s1 = std::chrono::steady_clock::now();

    setenv("EMC_CKPT_SHARED_WARMUP", "0", 1);
    const auto n0 = std::chrono::steady_clock::now();
    const std::vector<StatDump> perjob =
        runManyWarmShared(warm_cfg, mix, cfgs);
    const auto n1 = std::chrono::steady_clock::now();
    unsetenv("EMC_CKPT_SHARED_WARMUP");
    unsetenv("EMC_BENCH_THREADS");

    for (std::size_t i = 0; i < cfgs.size(); ++i) {
        if (!sameStats(shared[i], perjob[i],
                       ("shared vs per-job warmup, config "
                        + std::to_string(i))
                           .c_str())) {
            return 1;
        }
    }

    const double shared_s = seconds(s0, s1);
    const double perjob_s = seconds(n0, n1);
    const std::size_t warm_bytes =
        System(warm_cfg, mix).warmupCheckpointBytes().size();
    std::printf("  shared:  %7.2fs (1 warmup + %zu measured runs)\n",
                shared_s, cfgs.size());
    std::printf("  per-job: %7.2fs (%zu warmups)\n", perjob_s,
                cfgs.size());
    std::printf("  speedup: %7.2fx, stats identical\n",
                perjob_s / shared_s);

    std::FILE *f = std::fopen(out_path.c_str(), "w");
    if (!f) {
        std::perror("fopen");
        return 1;
    }
    std::fprintf(f, "{\n");
    std::fprintf(f, "  \"mode\": \"%s\",\n", smoke ? "smoke" : "full");
    std::fprintf(f, "  \"uops_per_core\": %llu,\n",
                 static_cast<unsigned long long>(uops));
    std::fprintf(f, "  \"roundtrip\": {\n");
    std::fprintf(f, "    \"save_cycle\": %llu,\n",
                 static_cast<unsigned long long>(mid));
    std::fprintf(f, "    \"image_bytes\": %zu,\n", full_bytes);
    std::fprintf(f, "    \"restore_seconds\": %.6f,\n", restore_s);
    std::fprintf(f, "    \"stats_identical\": true\n");
    std::fprintf(f, "  },\n");
    std::fprintf(f, "  \"shared_warmup\": {\n");
    std::fprintf(f, "    \"config_points\": %zu,\n", cfgs.size());
    std::fprintf(f, "    \"threads\": 1,\n");
    std::fprintf(f, "    \"warm_image_bytes\": %zu,\n", warm_bytes);
    std::fprintf(f, "    \"shared_seconds\": %.3f,\n", shared_s);
    std::fprintf(f, "    \"perjob_seconds\": %.3f,\n", perjob_s);
    std::fprintf(f, "    \"speedup\": %.3f,\n", perjob_s / shared_s);
    std::fprintf(f, "    \"stats_identical\": true\n");
    std::fprintf(f, "  }\n");
    std::fprintf(f, "}\n");
    std::fclose(f);
    std::printf("wrote %s\n", out_path.c_str());
    return 0;
}
