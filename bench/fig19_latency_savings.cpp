/**
 * @file
 * Figure 19: where the EMC's latency savings come from — bypassing
 * the interconnect fill path back to the core, bypassing the on-chip
 * cache accesses, and reduced queueing at the memory controller.
 *
 * Paper shape: a large fraction of the savings comes from reduced
 * DRAM contention in many workloads, but the other two factors are
 * significant and sometimes dominant.
 */

#include <cstdio>

#include "bench/bench_util.hh"
#include "workload/profile.hh"

int
main()
{
    using namespace emc;
    using namespace emc::bench;

    banner("Figure 19", "cycles saved per EMC request, by source",
           "savings split across interconnect bypass, cache bypass "
           "and reduced MC queueing");

    std::printf("%-5s %10s %10s %10s %10s\n", "mix", "ring-byp",
                "cache-byp", "queue", "total");
    for (std::size_t h = 0; h < quadWorkloads().size(); ++h) {
        const StatDump d = run(quadConfig(PrefetchConfig::kNone, true),
                               quadWorkloads()[h]);
        if (d.get("lat.emc_samples") <= 0) {
            std::printf("%-5s %10s\n", quadWorkloadName(h).c_str(),
                        "(no EMC requests)");
            continue;
        }
        // Core requests pay the ring path and the LLC lookup; EMC
        // requests skip both. Queue saving is the measured difference
        // in MC queue waits.
        const double ring_bypass = d.get("lat.core_ring");
        const double cache_bypass = d.get("lat.core_llcpath");
        const double queue_saving =
            d.get("lat.core_queue") - d.get("lat.emc_queue");
        std::printf("%-5s %10.1f %10.1f %10.1f %10.1f\n",
                    quadWorkloadName(h).c_str(), ring_bypass,
                    cache_bypass, queue_saving,
                    ring_bypass + cache_bypass + queue_saving);
    }
    note("");
    note("expected shape: all three components positive for most"
         " mixes; the queue component grows with contention.");
    return 0;
}
