/**
 * @file
 * Shared harness for the paper-reproduction benches: one binary per
 * table/figure, each printing the same rows/series the paper reports
 * alongside the paper's own numbers where the paper states them.
 *
 * Run lengths default to quick settings; set EMC_SIM_UOPS to lengthen
 * (e.g. EMC_SIM_UOPS=120000 for tighter statistics).
 *
 * Observability (DESIGN.md §6): set EMC_TRACE=prefix to write a Chrome
 * trace "<prefix>.runK.json" per simulation the bench launches (K is a
 * process-wide counter, so parallel runMany() jobs never collide), and
 * EMC_TRACE_INTERVAL=N to also stream interval stats alongside each.
 */

#ifndef EMC_BENCH_BENCH_UTIL_HH
#define EMC_BENCH_BENCH_UTIL_HH

#include <string>
#include <vector>

#include "sim/system.hh"

namespace emc::bench
{

/** Default per-core uop target for bench runs (env-overridable). */
std::uint64_t defaultUops();

/** Build a Table 1 quad-core config. */
SystemConfig quadConfig(PrefetchConfig pf = PrefetchConfig::kNone,
                        bool emc = false);

/** Build a Table 1 eight-core config (single or dual MC). */
SystemConfig eightConfig(PrefetchConfig pf, bool emc, bool dual_mc);

/** Run a system to completion and collect its stats. */
StatDump run(const SystemConfig &cfg,
             const std::vector<std::string> &benchmarks);

/** One independent simulation for runMany(). */
struct RunJob
{
    SystemConfig cfg;
    std::vector<std::string> benchmarks;
};

/** One failed runMany() job: which job and what its exception said. */
struct RunFailure
{
    std::size_t index;
    std::string what;
};

/**
 * Worker threads runMany() fans across: EMC_BENCH_THREADS if set,
 * else the hardware concurrency — except on small machines
 * (hardware_concurrency() <= 2), where jobs run inline on one thread:
 * the thread-pool overhead outweighs any overlap there, and inline
 * failures carry full backtraces.
 */
unsigned benchThreads();

/**
 * Worker *processes* for sharded sweeps: the value of EMC_BENCH_PROCS
 * (0 when unset/empty). 0 keeps the in-process thread-pool path; any
 * other value routes runMany()/runManySampled()/runManyWarmShared()
 * through the src/sweep coordinator (DESIGN.md §9).
 */
unsigned benchProcs();

/**
 * Run every job to completion, fanning independent System instances
 * across benchThreads() hardware threads — or, when EMC_BENCH_PROCS
 * is set, across that many forked worker processes (DESIGN.md §9).
 * Results come back indexed by job — result[i] belongs to jobs[i] no
 * matter which worker ran it or in what order jobs finished, so
 * output is deterministic and byte-identical at any worker count.
 */
std::vector<StatDump> runMany(const std::vector<RunJob> &jobs);

/**
 * Like runMany(), but a job that throws does not take the bench down:
 * its failure (job index + exception message) is appended to
 * @p failures, the remaining jobs still run to completion, and the
 * failed job's slot comes back as a default-constructed StatDump.
 * The overload without @p failures prints each failure to stderr and
 * throws after all jobs finish.
 *
 * Crash-resumable sweeps (DESIGN.md §7): when EMC_CKPT_DIR is set,
 * each job autosaves a full checkpoint to "<dir>/jobN.ckpt" every
 * EMC_CKPT_INTERVAL cycles (default 1000000) and writes its final
 * stats to "<dir>/jobN.stats". A rerun of the same job list resumes:
 * finished jobs load their .stats file without simulating, interrupted
 * jobs restore their .ckpt and continue. EMC_CKPT_STORE=<dir> is the
 * content-addressed variant: autosaves deduplicate into a ckpt::Store
 * instead of flat per-job files (DESIGN.md §9). Checkpointing is
 * incompatible with EMC_TRACE on the same run (restore refuses
 * attached tracers).
 */
std::vector<StatDump> runMany(const std::vector<RunJob> &jobs,
                              std::vector<RunFailure> *failures);

/**
 * The EMC_BENCH_PROCS execution engine, callable directly: shard
 * @p jobs across @p procs forked worker processes with dynamic
 * self-scheduling, per-job crash-resume (EMC_CKPT_DIR /
 * EMC_CKPT_STORE, as above) and automatic re-queue of jobs whose
 * worker dies. With EMC_SWEEP_STREAM_INTERVAL=N set, workers stream
 * interval stats over their message pipes, and EMC_SWEEP_STREAM=path
 * appends the merged JSONL to @p path. Failure semantics follow the
 * two runMany() overloads (@p failures null => throw).
 */
std::vector<StatDump>
runManySharded(const std::vector<RunJob> &jobs, unsigned procs,
               std::vector<RunFailure> *failures = nullptr);

/**
 * Warm-once-fork-many sweep (DESIGN.md §7): run the warmup phase under
 * @p warm_cfg once, snapshot the warmed caches / TLBs / predictors /
 * memory image, then run the measured phase of every config in
 * @p cfgs from that same snapshot. Every cfg must agree with
 * @p warm_cfg on the warmup-relevant fields (cores, cache geometry,
 * seed, workload) but may vary EMC / prefetcher / DRAM parameters —
 * exactly the fields an ablation sweeps.
 *
 * EMC_CKPT_SHARED_WARMUP=0 disables the sharing: each job then warms
 * up independently from @p warm_cfg. Because warmup is deterministic
 * the per-job images are byte-identical to the shared one, so results
 * do not change — only the redundant warmup work comes back.
 * EMC_TRACE is ignored for these runs (restore refuses tracers).
 */
std::vector<StatDump>
runManyWarmShared(const SystemConfig &warm_cfg,
                  const std::vector<std::string> &benchmarks,
                  const std::vector<SystemConfig> &cfgs);

/**
 * SMARTS-style sampled counterpart of runMany() (DESIGN.md §8): each
 * job fast-warms, then alternates detailed windows of @p p.detail uops
 * per core with fast-forwarded gaps to @p p.period, and its StatDump
 * carries the per-window means and 95% CIs as `sampled.*` keys
 * alongside the usual stats (which then cover detailed windows only).
 * Results are job-indexed like runMany(). EMC_CKPT_DIR resume applies
 * at job granularity: a finished job's "<dir>/jobN.sampled.stats"
 * sidecar is reloaded instead of re-simulating, while an interrupted
 * job restarts from scratch (the fastwarm phase has no mid-run
 * checkpoint). EMC_BENCH_PROCS shards jobs across processes.
 */
std::vector<StatDump> runManySampled(const std::vector<RunJob> &jobs,
                                     const SampleParams &p);

/**
 * Performance metric used throughout the benches: geometric mean over
 * cores of per-core IPC normalized to the same core in @p base.
 * 1.0 means "same as baseline".
 */
double relPerf(const StatDump &d, const StatDump &base, unsigned cores);

/** Print the standard bench banner. */
void banner(const std::string &item, const std::string &what,
            const std::string &paper_says);

/** Print a labelled measured-vs-paper line. */
void note(const std::string &text);

/** Four copies of one benchmark (homogeneous quad workloads). */
std::vector<std::string> homo(const std::string &name);

/** The H-i mix duplicated to eight cores (paper Section 5). */
std::vector<std::string> eightCoreMix(std::size_t h_index);

/**
 * Render a horizontal ASCII bar chart (the terminal rendition of a
 * paper figure). Bars are scaled to the maximum value; @p unit is
 * appended to the printed values.
 */
void barChart(const std::vector<std::pair<std::string, double>> &rows,
              const std::string &unit = "", unsigned width = 44);

/**
 * Render a grouped bar chart: one row per label with several series
 * values (e.g. base vs +emc), using a legend of one glyph per series.
 */
void groupedChart(const std::vector<std::string> &series,
                  const std::vector<std::pair<std::string,
                                              std::vector<double>>> &rows,
                  unsigned width = 40);

} // namespace emc::bench

#endif // EMC_BENCH_BENCH_UTIL_HH
