#!/bin/bash
# Regenerate every paper table/figure into results/ (one file per bench).
cd "$(dirname "$0")"
mkdir -p results
: > results/campaign.log
for b in build/bench/*; do
    [ -x "$b" ] || continue
    name=$(basename "$b")
    case "$name" in
        micro_primitives)
            echo "[$(date +%H:%M:%S)] $name" >> results/campaign.log
            "$b" --benchmark_min_time=0.2s > "results/$name.txt" 2>&1
            ;;
        *)
            echo "[$(date +%H:%M:%S)] $name" >> results/campaign.log
            "$b" > "results/$name.txt" 2>&1
            ;;
    esac
done
echo "[$(date +%H:%M:%S)] CAMPAIGN DONE" >> results/campaign.log
