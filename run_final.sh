#!/bin/bash
# Final deliverable runs: full test suite and every bench, tee'd to the
# files the top-level instructions name, plus per-figure snapshots.
cd "$(dirname "$0")"
ctest --test-dir build 2>&1 | tee /root/repo/test_output.txt
: > /root/repo/bench_output.txt
mkdir -p results
for b in build/bench/*; do
    { [ -f "$b" ] && [ -x "$b" ]; } || continue
    name=$(basename "$b")
    echo "[final] $name" >> results/campaign.log
    if [ "$name" = micro_primitives ]; then
        "$b" --benchmark_min_time=0.2s > "results/$name.txt" 2>&1
    else
        "$b" > "results/$name.txt" 2>&1
    fi
    cat "results/$name.txt" >> /root/repo/bench_output.txt
done
echo "[final] FINAL DONE" >> results/campaign.log
