file(REMOVE_RECURSE
  "CMakeFiles/prefetcher_showdown.dir/prefetcher_showdown.cpp.o"
  "CMakeFiles/prefetcher_showdown.dir/prefetcher_showdown.cpp.o.d"
  "prefetcher_showdown"
  "prefetcher_showdown.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/prefetcher_showdown.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
