# Empty dependencies file for prefetcher_showdown.
# This may be replaced when dependencies are built.
