file(REMOVE_RECURSE
  "CMakeFiles/emc_core.dir/branch_predictor.cc.o"
  "CMakeFiles/emc_core.dir/branch_predictor.cc.o.d"
  "CMakeFiles/emc_core.dir/core.cc.o"
  "CMakeFiles/emc_core.dir/core.cc.o.d"
  "libemc_core.a"
  "libemc_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emc_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
