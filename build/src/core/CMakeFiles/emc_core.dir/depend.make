# Empty dependencies file for emc_core.
# This may be replaced when dependencies are built.
