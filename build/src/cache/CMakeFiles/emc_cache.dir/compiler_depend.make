# Empty compiler generated dependencies file for emc_cache.
# This may be replaced when dependencies are built.
