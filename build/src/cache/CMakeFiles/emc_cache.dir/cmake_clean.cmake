file(REMOVE_RECURSE
  "CMakeFiles/emc_cache.dir/cache.cc.o"
  "CMakeFiles/emc_cache.dir/cache.cc.o.d"
  "libemc_cache.a"
  "libemc_cache.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emc_cache.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
