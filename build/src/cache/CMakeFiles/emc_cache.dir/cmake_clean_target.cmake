file(REMOVE_RECURSE
  "libemc_cache.a"
)
