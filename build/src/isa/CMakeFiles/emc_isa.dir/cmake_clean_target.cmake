file(REMOVE_RECURSE
  "libemc_isa.a"
)
