# Empty compiler generated dependencies file for emc_isa.
# This may be replaced when dependencies are built.
