file(REMOVE_RECURSE
  "CMakeFiles/emc_isa.dir/trace_io.cc.o"
  "CMakeFiles/emc_isa.dir/trace_io.cc.o.d"
  "CMakeFiles/emc_isa.dir/uop.cc.o"
  "CMakeFiles/emc_isa.dir/uop.cc.o.d"
  "libemc_isa.a"
  "libemc_isa.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emc_isa.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
