file(REMOVE_RECURSE
  "libemc_sim.a"
)
