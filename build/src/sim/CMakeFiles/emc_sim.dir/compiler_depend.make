# Empty compiler generated dependencies file for emc_sim.
# This may be replaced when dependencies are built.
