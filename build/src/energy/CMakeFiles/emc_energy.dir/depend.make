# Empty dependencies file for emc_energy.
# This may be replaced when dependencies are built.
