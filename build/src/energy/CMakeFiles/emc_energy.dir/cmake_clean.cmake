file(REMOVE_RECURSE
  "CMakeFiles/emc_energy.dir/energy_model.cc.o"
  "CMakeFiles/emc_energy.dir/energy_model.cc.o.d"
  "libemc_energy.a"
  "libemc_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emc_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
