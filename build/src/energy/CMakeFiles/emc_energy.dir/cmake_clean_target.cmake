file(REMOVE_RECURSE
  "libemc_energy.a"
)
