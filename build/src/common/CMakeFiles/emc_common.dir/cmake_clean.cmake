file(REMOVE_RECURSE
  "CMakeFiles/emc_common.dir/stats.cc.o"
  "CMakeFiles/emc_common.dir/stats.cc.o.d"
  "libemc_common.a"
  "libemc_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emc_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
