file(REMOVE_RECURSE
  "libemc_common.a"
)
