# Empty compiler generated dependencies file for emc_common.
# This may be replaced when dependencies are built.
