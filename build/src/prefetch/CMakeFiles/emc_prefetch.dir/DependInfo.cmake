
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/prefetch/ghb.cc" "src/prefetch/CMakeFiles/emc_prefetch.dir/ghb.cc.o" "gcc" "src/prefetch/CMakeFiles/emc_prefetch.dir/ghb.cc.o.d"
  "/root/repo/src/prefetch/markov.cc" "src/prefetch/CMakeFiles/emc_prefetch.dir/markov.cc.o" "gcc" "src/prefetch/CMakeFiles/emc_prefetch.dir/markov.cc.o.d"
  "/root/repo/src/prefetch/stream.cc" "src/prefetch/CMakeFiles/emc_prefetch.dir/stream.cc.o" "gcc" "src/prefetch/CMakeFiles/emc_prefetch.dir/stream.cc.o.d"
  "/root/repo/src/prefetch/stride.cc" "src/prefetch/CMakeFiles/emc_prefetch.dir/stride.cc.o" "gcc" "src/prefetch/CMakeFiles/emc_prefetch.dir/stride.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/emc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
