file(REMOVE_RECURSE
  "libemc_prefetch.a"
)
