# Empty dependencies file for emc_prefetch.
# This may be replaced when dependencies are built.
