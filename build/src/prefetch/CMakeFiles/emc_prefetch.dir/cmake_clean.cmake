file(REMOVE_RECURSE
  "CMakeFiles/emc_prefetch.dir/ghb.cc.o"
  "CMakeFiles/emc_prefetch.dir/ghb.cc.o.d"
  "CMakeFiles/emc_prefetch.dir/markov.cc.o"
  "CMakeFiles/emc_prefetch.dir/markov.cc.o.d"
  "CMakeFiles/emc_prefetch.dir/stream.cc.o"
  "CMakeFiles/emc_prefetch.dir/stream.cc.o.d"
  "CMakeFiles/emc_prefetch.dir/stride.cc.o"
  "CMakeFiles/emc_prefetch.dir/stride.cc.o.d"
  "libemc_prefetch.a"
  "libemc_prefetch.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emc_prefetch.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
