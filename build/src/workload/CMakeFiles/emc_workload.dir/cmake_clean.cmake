file(REMOVE_RECURSE
  "CMakeFiles/emc_workload.dir/profile.cc.o"
  "CMakeFiles/emc_workload.dir/profile.cc.o.d"
  "CMakeFiles/emc_workload.dir/synthetic.cc.o"
  "CMakeFiles/emc_workload.dir/synthetic.cc.o.d"
  "libemc_workload.a"
  "libemc_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emc_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
