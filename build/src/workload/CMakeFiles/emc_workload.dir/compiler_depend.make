# Empty compiler generated dependencies file for emc_workload.
# This may be replaced when dependencies are built.
