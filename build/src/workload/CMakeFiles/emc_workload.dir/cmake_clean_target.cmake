file(REMOVE_RECURSE
  "libemc_workload.a"
)
