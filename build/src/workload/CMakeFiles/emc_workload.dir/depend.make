# Empty dependencies file for emc_workload.
# This may be replaced when dependencies are built.
