file(REMOVE_RECURSE
  "libemc_emc.a"
)
