# Empty compiler generated dependencies file for emc_emc.
# This may be replaced when dependencies are built.
