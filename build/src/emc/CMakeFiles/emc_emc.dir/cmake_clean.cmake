file(REMOVE_RECURSE
  "CMakeFiles/emc_emc.dir/chain_codec.cc.o"
  "CMakeFiles/emc_emc.dir/chain_codec.cc.o.d"
  "CMakeFiles/emc_emc.dir/emc.cc.o"
  "CMakeFiles/emc_emc.dir/emc.cc.o.d"
  "libemc_emc.a"
  "libemc_emc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emc_emc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
