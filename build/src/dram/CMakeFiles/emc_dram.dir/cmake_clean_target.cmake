file(REMOVE_RECURSE
  "libemc_dram.a"
)
