# Empty compiler generated dependencies file for emc_dram.
# This may be replaced when dependencies are built.
