file(REMOVE_RECURSE
  "CMakeFiles/emc_dram.dir/dram_channel.cc.o"
  "CMakeFiles/emc_dram.dir/dram_channel.cc.o.d"
  "libemc_dram.a"
  "libemc_dram.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emc_dram.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
