# Empty dependencies file for emc_ring.
# This may be replaced when dependencies are built.
