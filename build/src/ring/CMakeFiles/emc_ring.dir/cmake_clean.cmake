file(REMOVE_RECURSE
  "CMakeFiles/emc_ring.dir/ring.cc.o"
  "CMakeFiles/emc_ring.dir/ring.cc.o.d"
  "libemc_ring.a"
  "libemc_ring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emc_ring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
