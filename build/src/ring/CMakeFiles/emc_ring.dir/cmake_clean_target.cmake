file(REMOVE_RECURSE
  "libemc_ring.a"
)
