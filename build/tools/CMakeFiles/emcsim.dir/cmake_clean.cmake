file(REMOVE_RECURSE
  "CMakeFiles/emcsim.dir/emcsim.cpp.o"
  "CMakeFiles/emcsim.dir/emcsim.cpp.o.d"
  "emcsim"
  "emcsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emcsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
