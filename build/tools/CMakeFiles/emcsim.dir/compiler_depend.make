# Empty compiler generated dependencies file for emcsim.
# This may be replaced when dependencies are built.
