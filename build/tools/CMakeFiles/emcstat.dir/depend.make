# Empty dependencies file for emcstat.
# This may be replaced when dependencies are built.
