file(REMOVE_RECURSE
  "CMakeFiles/emcstat.dir/emcstat.cpp.o"
  "CMakeFiles/emcstat.dir/emcstat.cpp.o.d"
  "emcstat"
  "emcstat.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emcstat.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
