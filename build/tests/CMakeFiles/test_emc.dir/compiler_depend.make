# Empty compiler generated dependencies file for test_emc.
# This may be replaced when dependencies are built.
