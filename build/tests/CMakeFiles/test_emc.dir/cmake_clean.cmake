file(REMOVE_RECURSE
  "CMakeFiles/test_emc.dir/test_emc.cpp.o"
  "CMakeFiles/test_emc.dir/test_emc.cpp.o.d"
  "test_emc"
  "test_emc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_emc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
