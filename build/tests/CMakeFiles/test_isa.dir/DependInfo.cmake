
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_isa.cpp" "tests/CMakeFiles/test_isa.dir/test_isa.cpp.o" "gcc" "tests/CMakeFiles/test_isa.dir/test_isa.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/emc_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/emc_core.dir/DependInfo.cmake"
  "/root/repo/build/src/emc/CMakeFiles/emc_emc.dir/DependInfo.cmake"
  "/root/repo/build/src/dram/CMakeFiles/emc_dram.dir/DependInfo.cmake"
  "/root/repo/build/src/ring/CMakeFiles/emc_ring.dir/DependInfo.cmake"
  "/root/repo/build/src/cache/CMakeFiles/emc_cache.dir/DependInfo.cmake"
  "/root/repo/build/src/prefetch/CMakeFiles/emc_prefetch.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/emc_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/isa/CMakeFiles/emc_isa.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/emc_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/emc_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
