# Empty dependencies file for test_param_properties.
# This may be replaced when dependencies are built.
