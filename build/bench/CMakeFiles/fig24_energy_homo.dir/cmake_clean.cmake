file(REMOVE_RECURSE
  "CMakeFiles/fig24_energy_homo.dir/fig24_energy_homo.cpp.o"
  "CMakeFiles/fig24_energy_homo.dir/fig24_energy_homo.cpp.o.d"
  "fig24_energy_homo"
  "fig24_energy_homo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig24_energy_homo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
