# Empty compiler generated dependencies file for fig24_energy_homo.
# This may be replaced when dependencies are built.
