file(REMOVE_RECURSE
  "CMakeFiles/ablation_emc_params.dir/ablation_emc_params.cpp.o"
  "CMakeFiles/ablation_emc_params.dir/ablation_emc_params.cpp.o.d"
  "ablation_emc_params"
  "ablation_emc_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_emc_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
