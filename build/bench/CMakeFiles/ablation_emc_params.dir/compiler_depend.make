# Empty compiler generated dependencies file for ablation_emc_params.
# This may be replaced when dependencies are built.
