file(REMOVE_RECURSE
  "CMakeFiles/fig12_quadcore_hetero.dir/fig12_quadcore_hetero.cpp.o"
  "CMakeFiles/fig12_quadcore_hetero.dir/fig12_quadcore_hetero.cpp.o.d"
  "fig12_quadcore_hetero"
  "fig12_quadcore_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig12_quadcore_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
