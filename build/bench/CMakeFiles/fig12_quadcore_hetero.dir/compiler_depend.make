# Empty compiler generated dependencies file for fig12_quadcore_hetero.
# This may be replaced when dependencies are built.
