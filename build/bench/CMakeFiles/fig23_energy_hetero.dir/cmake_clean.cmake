file(REMOVE_RECURSE
  "CMakeFiles/fig23_energy_hetero.dir/fig23_energy_hetero.cpp.o"
  "CMakeFiles/fig23_energy_hetero.dir/fig23_energy_hetero.cpp.o.d"
  "fig23_energy_hetero"
  "fig23_energy_hetero.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig23_energy_hetero.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
