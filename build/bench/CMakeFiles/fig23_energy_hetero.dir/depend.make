# Empty dependencies file for fig23_energy_hetero.
# This may be replaced when dependencies are built.
