file(REMOVE_RECURSE
  "CMakeFiles/emc_bench_util.dir/bench_util.cc.o"
  "CMakeFiles/emc_bench_util.dir/bench_util.cc.o.d"
  "libemc_bench_util.a"
  "libemc_bench_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/emc_bench_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
