# Empty dependencies file for emc_bench_util.
# This may be replaced when dependencies are built.
