file(REMOVE_RECURSE
  "libemc_bench_util.a"
)
