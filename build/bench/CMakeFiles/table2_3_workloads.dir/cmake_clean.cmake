file(REMOVE_RECURSE
  "CMakeFiles/table2_3_workloads.dir/table2_3_workloads.cpp.o"
  "CMakeFiles/table2_3_workloads.dir/table2_3_workloads.cpp.o.d"
  "table2_3_workloads"
  "table2_3_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_3_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
