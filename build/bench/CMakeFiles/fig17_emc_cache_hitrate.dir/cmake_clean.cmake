file(REMOVE_RECURSE
  "CMakeFiles/fig17_emc_cache_hitrate.dir/fig17_emc_cache_hitrate.cpp.o"
  "CMakeFiles/fig17_emc_cache_hitrate.dir/fig17_emc_cache_hitrate.cpp.o.d"
  "fig17_emc_cache_hitrate"
  "fig17_emc_cache_hitrate.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig17_emc_cache_hitrate.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
