# Empty dependencies file for fig17_emc_cache_hitrate.
# This may be replaced when dependencies are built.
