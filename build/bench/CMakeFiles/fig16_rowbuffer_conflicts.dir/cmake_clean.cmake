file(REMOVE_RECURSE
  "CMakeFiles/fig16_rowbuffer_conflicts.dir/fig16_rowbuffer_conflicts.cpp.o"
  "CMakeFiles/fig16_rowbuffer_conflicts.dir/fig16_rowbuffer_conflicts.cpp.o.d"
  "fig16_rowbuffer_conflicts"
  "fig16_rowbuffer_conflicts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig16_rowbuffer_conflicts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
