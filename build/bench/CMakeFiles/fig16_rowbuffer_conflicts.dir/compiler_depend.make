# Empty compiler generated dependencies file for fig16_rowbuffer_conflicts.
# This may be replaced when dependencies are built.
