file(REMOVE_RECURSE
  "CMakeFiles/fig03_prefetch_coverage.dir/fig03_prefetch_coverage.cpp.o"
  "CMakeFiles/fig03_prefetch_coverage.dir/fig03_prefetch_coverage.cpp.o.d"
  "fig03_prefetch_coverage"
  "fig03_prefetch_coverage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig03_prefetch_coverage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
