# Empty dependencies file for ext_runahead_vs_emc.
# This may be replaced when dependencies are built.
