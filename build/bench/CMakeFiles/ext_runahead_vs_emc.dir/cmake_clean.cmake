file(REMOVE_RECURSE
  "CMakeFiles/ext_runahead_vs_emc.dir/ext_runahead_vs_emc.cpp.o"
  "CMakeFiles/ext_runahead_vs_emc.dir/ext_runahead_vs_emc.cpp.o.d"
  "ext_runahead_vs_emc"
  "ext_runahead_vs_emc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_runahead_vs_emc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
