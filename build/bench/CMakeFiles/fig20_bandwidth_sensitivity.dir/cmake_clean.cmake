file(REMOVE_RECURSE
  "CMakeFiles/fig20_bandwidth_sensitivity.dir/fig20_bandwidth_sensitivity.cpp.o"
  "CMakeFiles/fig20_bandwidth_sensitivity.dir/fig20_bandwidth_sensitivity.cpp.o.d"
  "fig20_bandwidth_sensitivity"
  "fig20_bandwidth_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig20_bandwidth_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
