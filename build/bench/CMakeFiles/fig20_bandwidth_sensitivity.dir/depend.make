# Empty dependencies file for fig20_bandwidth_sensitivity.
# This may be replaced when dependencies are built.
