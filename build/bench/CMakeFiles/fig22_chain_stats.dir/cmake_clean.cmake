file(REMOVE_RECURSE
  "CMakeFiles/fig22_chain_stats.dir/fig22_chain_stats.cpp.o"
  "CMakeFiles/fig22_chain_stats.dir/fig22_chain_stats.cpp.o.d"
  "fig22_chain_stats"
  "fig22_chain_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig22_chain_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
