# Empty compiler generated dependencies file for fig22_chain_stats.
# This may be replaced when dependencies are built.
