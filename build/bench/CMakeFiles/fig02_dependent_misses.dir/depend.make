# Empty dependencies file for fig02_dependent_misses.
# This may be replaced when dependencies are built.
