file(REMOVE_RECURSE
  "CMakeFiles/fig02_dependent_misses.dir/fig02_dependent_misses.cpp.o"
  "CMakeFiles/fig02_dependent_misses.dir/fig02_dependent_misses.cpp.o.d"
  "fig02_dependent_misses"
  "fig02_dependent_misses.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig02_dependent_misses.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
