file(REMOVE_RECURSE
  "CMakeFiles/fig14_eightcore.dir/fig14_eightcore.cpp.o"
  "CMakeFiles/fig14_eightcore.dir/fig14_eightcore.cpp.o.d"
  "fig14_eightcore"
  "fig14_eightcore.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_eightcore.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
