# Empty compiler generated dependencies file for fig14_eightcore.
# This may be replaced when dependencies are built.
