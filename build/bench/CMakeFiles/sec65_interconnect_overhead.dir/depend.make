# Empty dependencies file for sec65_interconnect_overhead.
# This may be replaced when dependencies are built.
