file(REMOVE_RECURSE
  "CMakeFiles/sec65_interconnect_overhead.dir/sec65_interconnect_overhead.cpp.o"
  "CMakeFiles/sec65_interconnect_overhead.dir/sec65_interconnect_overhead.cpp.o.d"
  "sec65_interconnect_overhead"
  "sec65_interconnect_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sec65_interconnect_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
