# Empty compiler generated dependencies file for fig18_miss_latency.
# This may be replaced when dependencies are built.
