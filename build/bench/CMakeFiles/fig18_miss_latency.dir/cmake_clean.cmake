file(REMOVE_RECURSE
  "CMakeFiles/fig18_miss_latency.dir/fig18_miss_latency.cpp.o"
  "CMakeFiles/fig18_miss_latency.dir/fig18_miss_latency.cpp.o.d"
  "fig18_miss_latency"
  "fig18_miss_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig18_miss_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
