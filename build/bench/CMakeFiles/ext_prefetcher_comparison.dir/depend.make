# Empty dependencies file for ext_prefetcher_comparison.
# This may be replaced when dependencies are built.
