file(REMOVE_RECURSE
  "CMakeFiles/ext_prefetcher_comparison.dir/ext_prefetcher_comparison.cpp.o"
  "CMakeFiles/ext_prefetcher_comparison.dir/ext_prefetcher_comparison.cpp.o.d"
  "ext_prefetcher_comparison"
  "ext_prefetcher_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_prefetcher_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
