file(REMOVE_RECURSE
  "CMakeFiles/fig13_quadcore_homo.dir/fig13_quadcore_homo.cpp.o"
  "CMakeFiles/fig13_quadcore_homo.dir/fig13_quadcore_homo.cpp.o.d"
  "fig13_quadcore_homo"
  "fig13_quadcore_homo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_quadcore_homo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
