# Empty compiler generated dependencies file for fig13_quadcore_homo.
# This may be replaced when dependencies are built.
