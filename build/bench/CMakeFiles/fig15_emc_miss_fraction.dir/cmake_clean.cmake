file(REMOVE_RECURSE
  "CMakeFiles/fig15_emc_miss_fraction.dir/fig15_emc_miss_fraction.cpp.o"
  "CMakeFiles/fig15_emc_miss_fraction.dir/fig15_emc_miss_fraction.cpp.o.d"
  "fig15_emc_miss_fraction"
  "fig15_emc_miss_fraction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig15_emc_miss_fraction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
