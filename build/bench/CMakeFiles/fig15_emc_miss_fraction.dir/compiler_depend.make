# Empty compiler generated dependencies file for fig15_emc_miss_fraction.
# This may be replaced when dependencies are built.
