# Empty compiler generated dependencies file for fig21_prefetch_emc_overlap.
# This may be replaced when dependencies are built.
