file(REMOVE_RECURSE
  "CMakeFiles/fig21_prefetch_emc_overlap.dir/fig21_prefetch_emc_overlap.cpp.o"
  "CMakeFiles/fig21_prefetch_emc_overlap.dir/fig21_prefetch_emc_overlap.cpp.o.d"
  "fig21_prefetch_emc_overlap"
  "fig21_prefetch_emc_overlap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig21_prefetch_emc_overlap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
