# Empty dependencies file for fig19_latency_savings.
# This may be replaced when dependencies are built.
