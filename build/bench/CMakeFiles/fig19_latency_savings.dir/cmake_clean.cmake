file(REMOVE_RECURSE
  "CMakeFiles/fig19_latency_savings.dir/fig19_latency_savings.cpp.o"
  "CMakeFiles/fig19_latency_savings.dir/fig19_latency_savings.cpp.o.d"
  "fig19_latency_savings"
  "fig19_latency_savings.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig19_latency_savings.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
